// Package serve turns the simulator into a long-running MPU-as-a-service
// daemon: warm machine pools per (backend, mode) whose recipe-expansion
// memos survive across requests, a bounded admission queue with 503
// backpressure, a batching coalescer that merges identical requests into
// one SPMD run, per-request deadlines, and an observability plane
// (/metrics in Prometheus text format, /healthz, structured JSON request
// logs). The package is stdlib-only.
//
// Determinism contract: the same request produces byte-identical
// machine.Stats JSON whether it is served cold (first request on a fresh
// pool machine), warm (a recycled machine), batched (coalesced with
// identical requests), or under concurrent load — the service layer
// extension of the trace-parity and worker-count-parity discipline. The
// warm path leans on Machine.Reset, which recycles everything a run can
// observe while keeping the stats-neutral expansion memo.
//
// QoS classes: the X-QoS header sorts requests into two classes — "latency"
// (interactive, strict queue priority) and "batch" (the default). When a
// latency request arrives and every pool worker is busy, the scheduler asks
// the longest-running preemptible batch job to yield at its next ensemble
// boundary; the job's complete architectural state is captured with
// Machine.Snapshot into a bounded in-memory parking lot, the latency request
// runs on the freed machine, and the parked job is restored (on any pool
// machine — the snapshot fingerprint covers configuration, not worker
// identity) and resumed. Preemption extends rather than weakens the
// determinism contract: a parked-and-resumed run answers with byte-identical
// machine.Stats to an uninterrupted one.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mpu/internal/backends"
	"mpu/internal/controlpath"
	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/lint/comm"
	"mpu/internal/machine"
	"mpu/internal/workloads"
)

// PoolSpec describes one warm machine pool.
type PoolSpec struct {
	Backend string       // backends.ByName key ("racer", "mimdram", ...)
	Mode    machine.Mode // MPU or Baseline
	Size    int          // warm machines == executor workers (min 1)
}

// Config assembles a Server.
type Config struct {
	// Pools lists the warm machine pools; empty defaults to one two-machine
	// RACER/MPU pool.
	Pools []PoolSpec

	// QueueDepth bounds each pool's admission queue, counted in batches
	// (distinct pieces of work, not coalesced joiners). A full queue refuses
	// admission with 503 + Retry-After. Default 64.
	QueueDepth int

	// BatchWindow is how long a dequeued batch keeps accepting identical
	// requests before it is sealed and executed. Under load batches also
	// accumulate joiners while queued. Default 2ms; negative disables the
	// wait (a zero value means the default).
	BatchWindow time.Duration

	// MaxElements caps a workload request's element count. Default 1<<20.
	MaxElements int

	// DefaultDeadline applies when a request names no deadline_ms.
	// Default 30s.
	DefaultDeadline time.Duration

	// RetryAfter is the hint returned with 503 responses. Default 1s.
	RetryAfter time.Duration

	// NoTrace builds the pool machines with the trace engine disabled.
	NoTrace bool

	// NoJIT builds the pool machines with trace JIT compilation disabled
	// (traces replay step-interpreted).
	NoJIT bool

	// MachineWorkers is forwarded to each pool machine's scheduler
	// (kernel requests simulate one MPU, so this only matters for
	// submitted multi-MPU binaries).
	MachineWorkers int

	// NodeID labels this daemon in a multi-node cluster: when non-empty it
	// appears as a node="..." label on the /metrics gauges and as a "node"
	// field in the JSON request log, so a router scraping several mpuds can
	// tell the series apart. Metric names are unchanged either way.
	NodeID string

	// DebugDelay artificially delays each batch execution by the given
	// duration. It exists for the cluster studies and tests that need one
	// deliberately slow node (hedging p99 experiments); it never changes
	// machine.Stats, only wall time. Zero disables it.
	DebugDelay time.Duration

	// NoPreempt disables ensemble-boundary preemption: latency requests
	// still get strict queue priority over batch work, but never interrupt
	// a running batch job.
	NoPreempt bool

	// MaxParked bounds each pool's parking lot of preempted batch jobs
	// (snapshots held in memory). When the lot is full a preempted job
	// resumes in place and the miss is counted as a spill. Default 8.
	MaxParked int

	// MaxSessions bounds the live pipeline sessions (/v1/pipelines). A full
	// table refuses creates with 503 + Retry-After. Default 8.
	MaxSessions int

	// MaxPipelineMPUs caps how many MPUs one compiled pipeline may place; a
	// larger graph is rejected at admission with the geometry finding (422).
	// The backend's own MPU count still applies when smaller. Default 64.
	MaxPipelineMPUs int

	// Logs receives one JSON line per answered request; nil discards.
	Logs io.Writer
}

func (c Config) withDefaults() Config {
	if len(c.Pools) == 0 {
		c.Pools = []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 2}}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchWindow < 0 {
		c.BatchWindow = 0
	}
	if c.MaxElements <= 0 {
		c.MaxElements = 1 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxParked <= 0 {
		c.MaxParked = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.MaxPipelineMPUs <= 0 {
		c.MaxPipelineMPUs = 64
	}
	return c
}

// ParsePoolSpecs parses the mpud/mpuload flag syntax
// "backend:mode:size[,backend:mode:size...]", e.g. "racer:mpu:2,mimdram:mpu:1".
// Size defaults to 1 when omitted.
func ParsePoolSpecs(s string) ([]PoolSpec, error) {
	var out []PoolSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("serve: pool %q: want backend:mode[:size]", part)
		}
		mode, err := ParseMode(fields[1])
		if err != nil {
			return nil, fmt.Errorf("serve: pool %q: %w", part, err)
		}
		size := 1
		if len(fields) == 3 {
			size, err = strconv.Atoi(fields[2])
			if err != nil || size <= 0 {
				return nil, fmt.Errorf("serve: pool %q: bad size", part)
			}
		}
		out = append(out, PoolSpec{Backend: fields[0], Mode: mode, Size: size})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("serve: no pools in %q", s)
	}
	return out, nil
}

// ParseMode maps the wire spelling to a machine mode.
func ParseMode(s string) (machine.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "mpu":
		return machine.ModeMPU, nil
	case "baseline":
		return machine.ModeBaseline, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want mpu or baseline)", s)
}

// The QoS classes carried by the X-QoS request header.
const (
	ClassLatency = "latency"
	ClassBatch   = "batch"
)

// ParseClass maps the X-QoS header to a class; an absent header means batch.
func ParseClass(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", ClassBatch:
		return ClassBatch, nil
	case ClassLatency:
		return ClassLatency, nil
	}
	return "", fmt.Errorf("unknown QoS class %q (want latency or batch)", s)
}

// Request is the /v1/execute body. Exactly one of Workload (a catalog
// kernel) or Binary (base64 of an assembled, encoded program) must be set.
type Request struct {
	Workload   string        `json:"workload,omitempty"`
	Binary     string        `json:"binary,omitempty"`
	Backend    string        `json:"backend"`
	Mode       string        `json:"mode,omitempty"`
	Elements   int           `json:"elements,omitempty"`
	Seed       int64         `json:"seed,omitempty"`
	Check      bool          `json:"check,omitempty"`
	DeadlineMS int64         `json:"deadline_ms,omitempty"`
	Sets       []RegisterSet `json:"sets,omitempty"`  // binary requests: preloads
	Dumps      []RegisterRef `json:"dumps,omitempty"` // binary requests: post-run reads
}

// RegisterSet preloads one vector register on MPU 0 before a binary run.
type RegisterSet struct {
	RFH    uint8    `json:"rfh"`
	VRF    uint8    `json:"vrf"`
	Reg    int      `json:"reg"`
	Values []uint64 `json:"values"`
}

// RegisterRef names one vector register to read back after a binary run.
type RegisterRef struct {
	RFH uint8 `json:"rfh"`
	VRF uint8 `json:"vrf"`
	Reg int   `json:"reg"`
}

// RegisterDump is one post-run register read.
type RegisterDump struct {
	RFH    uint8    `json:"rfh"`
	VRF    uint8    `json:"vrf"`
	Reg    int      `json:"reg"`
	Values []uint64 `json:"values"`
}

// Response is the /v1/execute success body. Stats is the stable
// machine.Stats encoding and is byte-identical for a given request however
// it was served; the envelope around it (batch_size) may differ.
type Response struct {
	Workload     string          `json:"workload,omitempty"`
	Backend      string          `json:"backend"`
	Mode         string          `json:"mode"`
	Elements     int             `json:"elements,omitempty"`
	Seed         int64           `json:"seed"`
	BatchSize    int             `json:"batch_size"`
	Seconds      float64         `json:"seconds,omitempty"`
	Joules       float64         `json:"joules,omitempty"`
	CheckedLanes int             `json:"checked_lanes,omitempty"`
	Dumps        []RegisterDump  `json:"dumps,omitempty"`
	Stats        json.RawMessage `json:"stats"`
}

// errorBody is every non-2xx JSON payload. Findings carries the lint report
// when admission rejected the program statically (422), so clients see the
// same machine-readable diagnostics `mpurun -lint -json` emits.
type errorBody struct {
	Error    string         `json:"error"`
	Findings []lint.Finding `json:"findings,omitempty"`
}

// poolMPUs is the core count of every pooled machine (MachineConfigFor
// builds single-MPU machines); the admission-time commlint preflight checks
// submitted binaries against the same geometry they will run on.
const poolMPUs = 1

// admissionError is a statically rejected submission: the commlint preflight
// proved the program would stall or fault the pooled machine. It maps to
// 422 Unprocessable Entity with the finding report attached — distinct from
// 400 (malformed request) and from the base-lint rejection, which predates
// the communication checks and stays a 400.
type admissionError struct {
	report *lint.Report
}

func (e *admissionError) Error() string {
	return fmt.Sprintf("program rejected by commlint preflight: %d error finding(s)", len(e.report.Errs()))
}

// execReq is a validated request bound to its pool.
type execReq struct {
	raw    Request
	kernel *workloads.Kernel // workload path
	prog   isa.Program       // binary path
	class  string            // QoS class (ClassLatency or ClassBatch)
	key    string            // coalescing identity (class-inclusive)
}

// batchResult is the shared outcome fanned out to every coalesced waiter.
type batchResult struct {
	status int
	body   []byte
}

// batch is one piece of work in a pool's admission queue plus the waiters
// coalesced onto it.
type batch struct {
	key     string
	class   string
	req     *execReq
	created time.Time
	waiters []chan *batchResult // guarded by the pool mutex until sealed
}

// workerState is the scheduler's view of one executor goroutine and its
// warm machine. All fields except m are guarded by the pool mutex; the
// preemption path may call m.Preempt (an atomic flag) while the worker's
// Run is in flight.
type workerState struct {
	m           *machine.Machine
	busy        bool      // between take and the next take
	preemptible bool      // running a batch-class kernel job that can park
	preempting  bool      // a preemption request is outstanding
	started     time.Time // when the current job was taken
}

// parkedJob is one preempted batch job: its sealed batch, the prepared-run
// bookkeeping needed to finish it, and the machine snapshot to resume from.
type parkedJob struct {
	b    *batch
	prep *workloads.Prepared
	snap []byte
}

// pool is one (backend, mode) warm machine pool: Size pre-built machines,
// each owned by one executor goroutine, fed from two class queues (latency
// has strict priority) plus a parking lot of preempted batch jobs.
type pool struct {
	name string
	spec *backends.Spec
	mode machine.Mode

	queueDepth int  // shared bound across both class queues
	maxParked  int  // parking-lot bound, in jobs
	preempt    bool // ensemble-boundary preemption enabled

	mu      sync.Mutex
	cond    *sync.Cond // signaled on new work and on close
	latQ    []*batch   // latency-class admission queue (strict priority)
	batQ    []*batch   // batch-class admission queue
	parked  []*parkedJob
	open    map[string]*batch // batches still accepting joiners
	workers []*workerState
	closed  bool
}

// depth is the admission-queue occupancy across both classes — the value
// backpressure is computed from and the one /metrics exports, keeping the
// mpud_queue_depth series shape identical to the pre-QoS daemon.
func (p *pool) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.latQ) + len(p.batQ)
}

// Server implements the daemon's HTTP surface. Create with New, mount as an
// http.Handler, and on shutdown call Drain (stop admitting), then let the
// HTTP server finish in-flight handlers, then Close.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	pools    map[string]*pool
	order    []string // deterministic pool iteration for /metrics, /healthz
	metrics  *metrics
	logger   *reqLogger
	sess     *sessionManager
	draining atomic.Bool
	workers  sync.WaitGroup
	started  time.Time
}

// New builds the pools (pre-warming Size machines each) and starts their
// executor workers.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		pools:   map[string]*pool{},
		metrics: newMetrics(cfg.NodeID),
		logger:  newReqLogger(cfg.Logs, cfg.NodeID),
		sess:    newSessionManager(cfg.MaxSessions),
		started: time.Now(),
	}
	for _, ps := range cfg.Pools {
		spec, err := backends.ByName(ps.Backend)
		if err != nil {
			return nil, fmt.Errorf("serve: pool %q: %w", ps.Backend, err)
		}
		name := poolName(spec, ps.Mode)
		if _, dup := s.pools[name]; dup {
			return nil, fmt.Errorf("serve: duplicate pool %s", name)
		}
		size := ps.Size
		if size <= 0 {
			size = 1
		}
		p := &pool{
			name:       name,
			spec:       spec,
			mode:       ps.Mode,
			queueDepth: cfg.QueueDepth,
			maxParked:  cfg.MaxParked,
			preempt:    !cfg.NoPreempt,
			open:       map[string]*batch{},
		}
		p.cond = sync.NewCond(&p.mu)
		mc := workloads.MachineConfigFor(workloads.RunConfig{
			Spec: spec, Mode: ps.Mode, NoTrace: cfg.NoTrace, NoJIT: cfg.NoJIT, Workers: cfg.MachineWorkers,
		})
		for i := 0; i < size; i++ {
			m, err := machine.New(mc)
			if err != nil {
				return nil, fmt.Errorf("serve: pool %s: %w", name, err)
			}
			ws := &workerState{m: m}
			p.workers = append(p.workers, ws)
			s.workers.Add(1)
			go s.runWorker(p, ws)
		}
		s.pools[name] = p
		s.order = append(s.order, name)
	}
	sort.Strings(s.order)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/execute", s.handleExecute)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/v1/pipelines", s.handlePipelines)
	s.mux.HandleFunc("/v1/pipelines/", s.handlePipelineID)
	return s, nil
}

func poolName(spec *backends.Spec, mode machine.Mode) string {
	return spec.Name + "/" + mode.String()
}

// ServeHTTP dispatches to the daemon's endpoints.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting work: /v1/execute and /healthz answer 503 while
// requests already admitted keep running to completion. Idempotent.
func (s *Server) Drain() {
	if s.draining.CompareAndSwap(false, true) {
		s.logger.log(logEntry{Msg: "drain"})
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains, stops the pool workers once their queues empty, and waits
// for them. Call only after the HTTP layer has finished in-flight handlers
// (http.Server.Shutdown, or httptest.Server.Close in tests) — every queued
// batch has a waiting handler, so at that point the queues are empty.
func (s *Server) Close() {
	s.Drain()
	for _, name := range s.order {
		p := s.pools[name]
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.cond.Broadcast()
	}
	s.workers.Wait()
	s.logger.log(logEntry{Msg: "closed"})
}

// runWorker owns one warm machine and executes work from the pool — fresh
// batches and parked resumptions — until Close.
func (s *Server) runWorker(p *pool, w *workerState) {
	defer s.workers.Done()
	for {
		b, pj := p.take(w)
		switch {
		case pj != nil:
			s.resume(p, w, pj)
		case b != nil:
			// The coalescing window only delays batch-class work: a latency
			// request trades batching efficiency for response time.
			if b.class == ClassBatch && s.cfg.BatchWindow > 0 {
				if d := time.Until(b.created.Add(s.cfg.BatchWindow)); d > 0 {
					time.Sleep(d)
				}
			}
			p.mu.Lock()
			delete(p.open, b.key) // seal: later identical requests start a new batch
			p.mu.Unlock()
			if s.cfg.DebugDelay > 0 {
				time.Sleep(s.cfg.DebugDelay)
			}
			res, parked := s.execute(p, w, b)
			if parked {
				continue // the job is in the parking lot; pick up latency work
			}
			s.deliver(b, res)
		default:
			return // closed and drained
		}
	}
}

// take blocks until there is work for this worker: a latency batch first,
// then a parked job to resume, then fresh batch work. Returns (nil, nil)
// once the pool is closed and fully drained.
func (p *pool) take(w *workerState) (*batch, *parkedJob) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.busy, w.preemptible, w.preempting = false, false, false
	for {
		if len(p.latQ) > 0 {
			b := p.latQ[0]
			p.latQ = p.latQ[1:]
			w.busy, w.started = true, time.Now()
			return b, nil
		}
		if len(p.parked) > 0 {
			pj := p.parked[0]
			p.parked = p.parked[1:]
			w.busy, w.started = true, time.Now()
			w.preemptible = p.preempt // a resumed batch job can be parked again
			return nil, pj
		}
		if len(p.batQ) > 0 {
			b := p.batQ[0]
			p.batQ = p.batQ[1:]
			w.busy, w.started = true, time.Now()
			w.preemptible = p.preempt && b.req.kernel != nil // binary runs never park
			return b, nil
		}
		if p.closed {
			return nil, nil
		}
		p.cond.Wait()
	}
}

// deliver fans a sealed batch's shared result out to every coalesced waiter.
func (s *Server) deliver(b *batch, res *batchResult) {
	s.metrics.observeBatch(len(b.waiters))
	for _, ch := range b.waiters {
		ch <- res // buffered: an abandoned (deadline-expired) waiter cannot block the pool
	}
}

// admit joins an open identical batch or enqueues the request in its class
// queue; a latency arrival that finds no idle worker asks the longest-running
// preemptible batch job to yield at its next ensemble boundary. Joining
// consumes no queue slot: backpressure is on distinct work.
func (p *pool) admit(rq *execReq) (<-chan *batchResult, bool) {
	ch := make(chan *batchResult, 1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if b, ok := p.open[rq.key]; ok {
		b.waiters = append(b.waiters, ch)
		return ch, true
	}
	if len(p.latQ)+len(p.batQ) >= p.queueDepth {
		return nil, false
	}
	b := &batch{key: rq.key, class: rq.class, req: rq, created: time.Now(), waiters: []chan *batchResult{ch}}
	if rq.class == ClassLatency {
		p.latQ = append(p.latQ, b)
		if p.preempt {
			p.preemptForLatency()
		}
	} else {
		p.batQ = append(p.batQ, b)
	}
	p.open[rq.key] = b
	p.cond.Signal()
	return ch, true
}

// preemptForLatency, called with p.mu held after a latency enqueue, asks the
// longest-running preemptible batch job to yield. A no-op when any worker is
// idle (it will pick the latency batch up directly) or when nothing running
// can be preempted (only latency or binary jobs in flight).
func (p *pool) preemptForLatency() {
	var victim *workerState
	for _, w := range p.workers {
		if !w.busy {
			return
		}
		if w.preemptible && !w.preempting && (victim == nil || w.started.Before(victim.started)) {
			victim = w
		}
	}
	if victim != nil {
		victim.preempting = true
		victim.m.Preempt()
	}
}

// park moves a preempted batch job off the worker's machine into the pool's
// parking lot. Called after Run returned ErrPreempted at an ensemble
// boundary; returns false when the job should simply resume in place —
// either the latency burst that triggered the preemption was already
// absorbed by another worker, or the lot is full (counted as a spill).
func (p *pool) park(w *workerState, b *batch, prep *workloads.Prepared, mt *metrics) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.preempting = false
	if len(p.latQ) == 0 {
		return false
	}
	if len(p.parked) >= p.maxParked {
		mt.observeSpill()
		return false
	}
	snap := prep.Machine.Snapshot()
	p.parked = append(p.parked, &parkedJob{b: b, prep: prep, snap: snap})
	mt.observePark(len(snap))
	p.cond.Signal()
	return true
}

// resume restores a parked job onto this worker's machine and runs it to
// completion (or parks it again at the next preemption point). Any pool
// machine can host the restore: the snapshot fingerprint pins machine
// configuration, not worker identity.
func (s *Server) resume(p *pool, w *workerState, pj *parkedJob) {
	s.metrics.observeUnpark(len(pj.snap))
	t0 := time.Now()
	if err := w.m.Restore(pj.snap); err != nil {
		s.deliver(pj.b, errResult(http.StatusInternalServerError, err))
		return
	}
	s.metrics.observeRestore(time.Since(t0).Seconds())
	pj.prep.Machine = w.m
	res, parked := s.runKernel(p, w, pj.b, pj.prep)
	if parked {
		return
	}
	s.deliver(pj.b, res)
}

// execute runs one sealed batch on the worker's warm machine. The second
// return reports that the job was preempted and parked instead of finishing;
// its result will be delivered by whichever worker resumes it.
func (s *Server) execute(p *pool, w *workerState, b *batch) (*batchResult, bool) {
	rq := b.req
	if rq.kernel != nil {
		prep, err := workloads.PrepareOn(w.m, rq.kernel, workloads.RunConfig{
			Spec:          p.spec,
			Mode:          p.mode,
			TotalElements: rq.raw.Elements,
			Seed:          rq.raw.Seed,
			Check:         rq.raw.Check,
			NoTrace:       s.cfg.NoTrace,
			NoJIT:         s.cfg.NoJIT,
			Workers:       s.cfg.MachineWorkers,
		})
		if err != nil {
			return errResult(http.StatusInternalServerError, err), false
		}
		return s.runKernel(p, w, b, prep)
	}
	m := w.m
	resp := Response{
		Backend:   p.spec.Name,
		Mode:      p.mode.String(),
		Seed:      rq.raw.Seed,
		BatchSize: len(b.waiters),
	}
	m.Reset()
	if err := m.LoadAll(rq.prog); err != nil {
		return errResult(http.StatusInternalServerError, err), false
	}
	for _, set := range rq.raw.Sets {
		a := controlpath.VRFAddr{RFH: set.RFH, VRF: set.VRF}
		if err := m.WriteVector(0, a, set.Reg, set.Values); err != nil {
			return errResult(http.StatusBadRequest, err), false
		}
	}
	run, err := m.Run()
	if err != nil {
		return errResult(http.StatusInternalServerError, err), false
	}
	cp := *run
	for _, d := range rq.raw.Dumps {
		a := controlpath.VRFAddr{RFH: d.RFH, VRF: d.VRF}
		vals, err := m.ReadVector(0, a, d.Reg)
		if err != nil {
			return errResult(http.StatusBadRequest, err), false
		}
		resp.Dumps = append(resp.Dumps, RegisterDump{RFH: d.RFH, VRF: d.VRF, Reg: d.Reg, Values: vals})
	}
	return s.sealResponse(&resp, &cp), false
}

// runKernel drives a prepared kernel batch to completion, parking it when a
// preemption request lands at an ensemble boundary and the pool wants the
// machine. Preemption is invisible in the response: a parked-and-resumed run
// produces byte-identical stats to an uninterrupted one.
func (s *Server) runKernel(p *pool, w *workerState, b *batch, prep *workloads.Prepared) (*batchResult, bool) {
	for {
		// A preemption request that landed before this run started was
		// cleared by the Reset inside PrepareOn (or by Restore); re-arm it
		// so the run yields at its first ensemble boundary.
		p.mu.Lock()
		if w.preempting {
			prep.Machine.Preempt()
		}
		p.mu.Unlock()
		run, err := prep.Machine.Run()
		if errors.Is(err, machine.ErrPreempted) {
			if p.park(w, b, prep, s.metrics) {
				return nil, true
			}
			continue // nothing to yield to (or no room): resume in place
		}
		if err != nil {
			return errResult(http.StatusInternalServerError, err), false
		}
		res, err := prep.Finish(run)
		if err != nil {
			return errResult(http.StatusInternalServerError, err), false
		}
		resp := Response{
			Workload:     b.req.kernel.Name,
			Backend:      p.spec.Name,
			Mode:         p.mode.String(),
			Elements:     b.req.raw.Elements,
			Seed:         b.req.raw.Seed,
			BatchSize:    len(b.waiters),
			Seconds:      res.Seconds,
			Joules:       res.Joules,
			CheckedLanes: res.CheckedLanes,
		}
		return s.sealResponse(&resp, res.Stats), false
	}
}

// sealResponse rolls the run's stats into the metrics plane and marshals the
// shared response body.
func (s *Server) sealResponse(resp *Response, st *machine.Stats) *batchResult {
	s.metrics.rollupStats(st.TraceHits, st.TraceMisses, st.TraceFallbacks, st.JITCompiles, st.JITReplays, st.Rounds)
	statsJSON, err := json.Marshal(st)
	if err != nil {
		return errResult(http.StatusInternalServerError, err)
	}
	resp.Stats = statsJSON
	body, err := json.Marshal(resp)
	if err != nil {
		return errResult(http.StatusInternalServerError, err)
	}
	return &batchResult{status: http.StatusOK, body: body}
}

func errResult(status int, err error) *batchResult {
	body, _ := json.Marshal(errorBody{Error: err.Error()})
	return &batchResult{status: status, body: body}
}

// validate parses the wire request into an execReq bound to a pool.
func (s *Server) validate(raw *Request, class string) (*execReq, *pool, error) {
	mode, err := ParseMode(raw.Mode)
	if err != nil {
		return nil, nil, err
	}
	spec, err := backends.ByName(raw.Backend)
	if err != nil {
		return nil, nil, err
	}
	p, ok := s.pools[poolName(spec, mode)]
	if !ok {
		return nil, nil, fmt.Errorf("no pool for %s (have %s)", poolName(spec, mode), strings.Join(s.order, ", "))
	}
	rq := &execReq{raw: *raw, class: class}
	switch {
	case raw.Workload != "" && raw.Binary != "":
		return nil, nil, fmt.Errorf("request names both a workload and a binary")
	case raw.Workload != "":
		rq.kernel = workloads.ByName(raw.Workload)
		if rq.kernel == nil {
			return nil, nil, fmt.Errorf("unknown workload %q (see /v1/workloads)", raw.Workload)
		}
		if raw.Elements <= 0 {
			return nil, nil, fmt.Errorf("workload request needs elements > 0")
		}
		if raw.Elements > s.cfg.MaxElements {
			return nil, nil, fmt.Errorf("elements %d exceeds the per-request cap %d", raw.Elements, s.cfg.MaxElements)
		}
		if len(raw.Sets) > 0 || len(raw.Dumps) > 0 {
			return nil, nil, fmt.Errorf("sets/dumps apply to binary requests only")
		}
	case raw.Binary != "":
		buf, err := base64.StdEncoding.DecodeString(raw.Binary)
		if err != nil {
			return nil, nil, fmt.Errorf("binary is not base64: %w", err)
		}
		prog, err := isa.DecodeProgram(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("binary does not decode: %w", err)
		}
		// Lint preflight at admission: a program with Error findings is
		// rejected with the report before it can consume a queue slot or
		// trip a runtime guard on a pooled machine.
		if err := lint.Preflight(prog, spec); err != nil {
			return nil, nil, err
		}
		// Communication preflight: pool machines run the binary SPMD, so a
		// program whose rendezvous cannot complete (self-send, out-of-mesh
		// partner, unmatched or deadlocking exchange) would park a warm
		// machine until the deadlock detector fires. Reject it statically
		// with the finding report instead — before pool admission.
		if rep := comm.LintSPMD(prog, poolMPUs, comm.Options{Spec: spec}); !rep.Ok() {
			return nil, nil, &admissionError{report: rep}
		}
		rq.prog = prog
	default:
		return nil, nil, fmt.Errorf("request needs a workload or a binary")
	}
	// The class is part of the coalescing identity: a latency request never
	// rides on (or waits for) an open batch-class twin.
	key, err := json.Marshal(struct {
		W  string        `json:"w"`
		B  string        `json:"b"`
		E  int           `json:"e"`
		S  int64         `json:"s"`
		C  bool          `json:"c"`
		Q  string        `json:"q"`
		St []RegisterSet `json:"st,omitempty"`
		D  []RegisterRef `json:"d,omitempty"`
	}{raw.Workload, raw.Binary, raw.Elements, raw.Seed, raw.Check, class, raw.Sets, raw.Dumps})
	if err != nil {
		return nil, nil, err
	}
	rq.key = string(key)
	return rq, p, nil
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	start := time.Now()
	class, err := ParseClass(r.Header.Get("X-QoS"))
	if err != nil {
		s.finish(w, nil, "", "", start, http.StatusBadRequest,
			errResult(http.StatusBadRequest, err))
		return
	}
	var raw Request
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&raw); err != nil {
		s.finish(w, nil, "", class, start, http.StatusBadRequest,
			errResult(http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)))
		return
	}
	rq, p, err := s.validate(&raw, class)
	if err != nil {
		var adm *admissionError
		if errors.As(err, &adm) {
			body, _ := json.Marshal(errorBody{Error: adm.Error(), Findings: adm.report.Findings})
			s.finish(w, nil, raw.Workload, class, start, http.StatusUnprocessableEntity,
				&batchResult{status: http.StatusUnprocessableEntity, body: body})
			return
		}
		s.finish(w, nil, raw.Workload, class, start, http.StatusBadRequest,
			errResult(http.StatusBadRequest, err))
		return
	}
	if s.Draining() {
		s.refuse(w, p, rq, start, "draining")
		return
	}
	ch, admitted := p.admit(rq)
	if !admitted {
		s.refuse(w, p, rq, start, "queue full")
		return
	}
	s.metrics.addInflight(1)
	defer s.metrics.addInflight(-1)

	deadline := s.cfg.DefaultDeadline
	if raw.DeadlineMS > 0 {
		deadline = time.Duration(raw.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	select {
	case res := <-ch:
		s.finish(w, p, raw.Workload, class, start, res.status, res)
	case <-ctx.Done():
		// The batch still executes (its result lands in the buffered
		// channel); only this waiter gives up.
		s.finish(w, p, raw.Workload, class, start, http.StatusGatewayTimeout,
			errResult(http.StatusGatewayTimeout, fmt.Errorf("deadline exceeded after %s", deadline)))
	}
}

// refuse answers 503 + Retry-After: the admission-side backpressure path.
func (s *Server) refuse(w http.ResponseWriter, p *pool, rq *execReq, start time.Time, why string) {
	w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	s.metrics.observeDrop(http.StatusServiceUnavailable)
	res := errResult(http.StatusServiceUnavailable, fmt.Errorf("not admitted: %s", why))
	writeBody(w, res.status, res.body)
	s.logger.log(logEntry{
		Msg: "refused", Pool: p.name, Workload: rq.raw.Workload, Class: rq.class,
		Status: http.StatusServiceUnavailable, MS: msSince(start), Queue: p.depth(), Err: why,
	})
}

// finish writes the response and the request log line, and counts the
// request in the metrics plane.
func (s *Server) finish(w http.ResponseWriter, p *pool, workload, class string, start time.Time, status int, res *batchResult) {
	elapsed := time.Since(start).Seconds()
	s.metrics.observeRequest(status, elapsed)
	if class != "" {
		s.metrics.observeClass(class, elapsed)
	}
	writeBody(w, status, res.body)
	e := logEntry{Msg: "request", Workload: workload, Class: class, Status: status, MS: elapsed * 1e3}
	if p != nil {
		e.Pool = p.name
		e.Queue = p.depth()
	}
	if status >= 400 {
		var eb errorBody
		if json.Unmarshal(res.body, &eb) == nil {
			e.Err = eb.Error
		}
	}
	s.logger.log(e)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status string   `json:"status"`
		Node   string   `json:"node,omitempty"`
		Pools  []string `json:"pools"`
		UpSec  float64  `json:"up_sec"`
	}
	h := health{Status: "ok", Node: s.cfg.NodeID, Pools: s.order, UpSec: time.Since(s.started).Seconds()}
	code := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	depths := make([]queueDepth, 0, len(s.order))
	for _, name := range s.order {
		depths = append(depths, queueDepth{pool: name, depth: s.pools[name].depth()})
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, s.metrics.render(depths))
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name   string `json:"name"`
		Group  string `json:"group"`
		Inputs int    `json:"inputs"`
	}
	var out struct {
		Workloads []entry `json:"workloads"`
	}
	for _, k := range workloads.All() {
		out.Workloads = append(out.Workloads, entry{Name: k.Name, Group: k.Group.String(), Inputs: k.Inputs})
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, status, body)
}

func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func msSince(t time.Time) float64 { return time.Since(t).Seconds() * 1e3 }
