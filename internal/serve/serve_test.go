package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mpu/internal/isa"
	"mpu/internal/lint"
	"mpu/internal/machine"
)

// newTestServer builds a Server + httptest front end and registers cleanup
// in the right order (HTTP layer first, then the pools).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(s.Close)
	t.Cleanup(ts.Close)
	return s, ts
}

func postExecute(t *testing.T, url string, req Request) (int, []byte, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

func decodeResponse(t *testing.T, body []byte) *Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad response %s: %v", body, err)
	}
	return &r
}

func TestExecuteWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body, _ := postExecute(t, ts.URL, Request{
		Workload: "gcd", Backend: "racer", Elements: 256, Seed: 7, Check: true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	r := decodeResponse(t, body)
	if r.Workload != "gcd" || r.Backend != "RACER" || r.Mode != "MPU" {
		t.Fatalf("bad envelope: %s", body)
	}
	if r.CheckedLanes == 0 || r.Seconds <= 0 || r.Joules <= 0 {
		t.Fatalf("implausible result: %s", body)
	}
	var st machine.Stats
	if err := json.Unmarshal(r.Stats, &st); err != nil {
		t.Fatalf("stats do not decode: %v", err)
	}
	if st.Cycles <= 0 || st.Ensembles == 0 {
		t.Fatalf("implausible stats: %s", r.Stats)
	}
}

func TestExecuteValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  Request
		want int
	}{
		{"unknown workload", Request{Workload: "nope", Backend: "racer", Elements: 8}, 400},
		{"unknown backend", Request{Workload: "gcd", Backend: "tpu", Elements: 8}, 400},
		{"no pool for mode", Request{Workload: "gcd", Backend: "racer", Mode: "baseline", Elements: 8}, 400},
		{"zero elements", Request{Workload: "gcd", Backend: "racer"}, 400},
		{"element cap", Request{Workload: "gcd", Backend: "racer", Elements: 1 << 30}, 400},
		{"both workload and binary", Request{Workload: "gcd", Binary: "AAAA", Backend: "racer", Elements: 8}, 400},
		{"neither", Request{Backend: "racer"}, 400},
		{"bad base64", Request{Binary: "!!!", Backend: "racer"}, 400},
	}
	for _, tc := range cases {
		code, body, _ := postExecute(t, ts.URL, tc.req)
		if code != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, code, tc.want, body)
		}
	}
}

// TestExecuteBinary submits a raw assembled program with register preloads
// and dumps, round-tripping through base64 like a real client.
func TestExecuteBinary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	prog, err := isa.Assemble(`
	COMPUTE rfh0 vrf0
	ADD r0 r1 r2
	COMPUTE_DONE
`)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Binary:  base64.StdEncoding.EncodeToString(isa.EncodeProgram(prog)),
		Backend: "racer",
		Sets: []RegisterSet{
			{RFH: 0, VRF: 0, Reg: 0, Values: []uint64{3, 5, 7}},
			{RFH: 0, VRF: 0, Reg: 1, Values: []uint64{10, 20, 30}},
		},
		Dumps: []RegisterRef{{RFH: 0, VRF: 0, Reg: 2}},
	}
	code, body, _ := postExecute(t, ts.URL, req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	r := decodeResponse(t, body)
	if len(r.Dumps) != 1 {
		t.Fatalf("want 1 dump: %s", body)
	}
	got := r.Dumps[0].Values
	want := []uint64{13, 25, 37}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestExecuteBinaryLintPreflight pins that a structurally broken binary is
// refused at admission with the lint report, not run to a machine fault.
func TestExecuteBinaryLintPreflight(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// An instruction outside any ensemble: lint Error, machine fault.
	prog := isa.Program{{Op: isa.ADD, A: 0, B: 1, C: 2}}
	if err := prog.Validate(); err != nil {
		t.Skipf("program no longer encodes: %v", err)
	}
	req := Request{
		Binary:  base64.StdEncoding.EncodeToString(isa.EncodeProgram(prog)),
		Backend: "racer",
	}
	code, body, _ := postExecute(t, ts.URL, req)
	if code != http.StatusBadRequest {
		t.Fatalf("lint-broken binary got %d: %s", code, body)
	}
	if !strings.Contains(string(body), "lint") {
		t.Fatalf("error does not carry the lint report: %s", body)
	}
}

// TestExecuteBinaryCommPreflight pins the commlint admission contract: a
// base-lint-clean binary whose communication can never complete on the pool
// geometry is rejected 422 with the finding report — before it occupies a
// pool slot and parks a warm machine until the runtime deadlock detector
// fires.
func TestExecuteBinaryCommPreflight(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// RECV from a partner outside the single-MPU pool mesh: structurally
	// fine, statically guaranteed never to rendezvous.
	prog := isa.Program{isa.Recv(1)}
	req := Request{
		Binary:  base64.StdEncoding.EncodeToString(isa.EncodeProgram(prog)),
		Backend: "racer",
	}
	code, body, _ := postExecute(t, ts.URL, req)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("statically deadlocking binary got %d, want 422: %s", code, body)
	}
	var eb struct {
		Error    string         `json:"error"`
		Findings []lint.Finding `json:"findings"`
	}
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("422 body is not the error envelope: %v\n%s", err, body)
	}
	if !strings.Contains(eb.Error, "commlint") {
		t.Errorf("error does not name the commlint preflight: %s", eb.Error)
	}
	found := false
	for _, f := range eb.Findings {
		if f.Check == "comm-partner-range" && f.Severity == lint.Error {
			found = true
		}
	}
	if !found {
		t.Errorf("422 body lacks the comm-partner-range finding: %s", body)
	}
}

// TestBackpressure pins the 503 + Retry-After contract: with a queue of one
// and a single busy worker, distinct requests beyond capacity are refused.
func TestBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		QueueDepth:  1,
		BatchWindow: 100 * time.Millisecond, // hold the worker so the queue stays occupied
	})
	var wg sync.WaitGroup
	status := make([]int, 8)
	for i := range status {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct seeds so nothing coalesces: each request needs a slot.
			code, _, hdr := postExecute(t, ts.URL, Request{
				Workload: "vecadd", Backend: "racer", Elements: 64, Seed: int64(i),
			})
			status[i] = code
			if code == http.StatusServiceUnavailable && hdr.Get("Retry-After") == "" {
				t.Errorf("503 without Retry-After")
			}
		}(i)
	}
	wg.Wait()
	ok, refused := 0, 0
	for _, c := range status {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			refused++
		default:
			t.Fatalf("unexpected status %v", status)
		}
	}
	if ok == 0 || refused == 0 {
		t.Fatalf("want both served and refused requests, got %v", status)
	}
	// The metrics plane must have counted the refusals.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "mpud_backpressure_total") {
		t.Fatalf("metrics missing backpressure counter:\n%s", buf.String())
	}
	_ = s
}

// TestBatchingCoalesces pins that identical requests inside the window run
// once: every response reports the same batch size > 1 and identical stats.
func TestBatchingCoalesces(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 150 * time.Millisecond,
	})
	const n = 4
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := postExecute(t, ts.URL, Request{
				Workload: "relu", Backend: "racer", Elements: 128, Seed: 42,
			})
			if code != http.StatusOK {
				t.Errorf("status %d: %s", code, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	sizes := map[int]bool{}
	var stats [][]byte
	for _, b := range bodies {
		r := decodeResponse(t, b)
		sizes[r.BatchSize] = true
		stats = append(stats, r.Stats)
	}
	// All four arrive well inside the 150ms window, so they coalesce into
	// one run; every waiter sees the same batch size.
	if len(sizes) != 1 || !sizes[n] {
		t.Fatalf("want every response batched at size %d, got sizes %v", n, sizes)
	}
	for i := 1; i < len(stats); i++ {
		if !bytes.Equal(stats[0], stats[i]) {
			t.Fatalf("batched stats diverge:\n%s\n%s", stats[0], stats[i])
		}
	}
}

// TestDeadlineWhileQueued pins the 504 path: a deadline shorter than the
// batch window expires while the request waits.
func TestDeadlineWhileQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 300 * time.Millisecond,
	})
	code, body, _ := postExecute(t, ts.URL, Request{
		Workload: "vecxor", Backend: "racer", Elements: 64, DeadlineMS: 20,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %s", code, body)
	}
}

// TestDrain pins the graceful-drain contract: requests admitted before
// Drain complete with 200, requests after are refused with 503, and
// /healthz flips to draining.
func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Pools:       []PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
		BatchWindow: 200 * time.Millisecond,
	})
	done := make(chan int, 1)
	go func() {
		code, _, _ := postExecute(t, ts.URL, Request{
			Workload: "gcd", Backend: "racer", Elements: 256, Seed: 1,
		})
		done <- code
	}()
	// Wait until the request is admitted (inflight gauge reaches 1).
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.metrics.mu.Lock()
		n := s.metrics.inflight
		s.metrics.mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	s.Drain()
	if code, _, _ := postExecute(t, ts.URL, Request{
		Workload: "gcd", Backend: "racer", Elements: 256, Seed: 2,
	}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain admission got %d (want 503)", code)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz got %d (want 503)", resp.StatusCode)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request dropped during drain: %d", code)
	}
}

func TestHealthzAndWorkloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d", resp.StatusCode)
	}
	var h struct {
		Status string   `json:"status"`
		Pools  []string `json:"pools"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Pools) != 1 || h.Pools[0] != "RACER/MPU" {
		t.Fatalf("bad healthz: %+v", h)
	}

	resp2, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var w struct {
		Workloads []struct {
			Name string `json:"name"`
		} `json:"workloads"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&w); err != nil {
		t.Fatal(err)
	}
	if len(w.Workloads) != 21 {
		t.Fatalf("catalog lists %d workloads, want 21", len(w.Workloads))
	}
}

// TestMetricsExposition pins the catalog of series the ISSUE promises:
// queue depth, batch size and latency histograms, and backpressure.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, body, _ := postExecute(t, ts.URL, Request{
		Workload: "vecadd", Backend: "racer", Elements: 64,
	}); code != http.StatusOK {
		t.Fatalf("execute: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, series := range []string{
		`mpud_requests_total{code="200"} 1`,
		`mpud_queue_depth{pool="RACER/MPU"} 0`,
		"mpud_batches_total 1",
		`mpud_batch_size_bucket{le="1"} 1`,
		"mpud_batch_size_count 1",
		"mpud_request_seconds_bucket",
		"mpud_request_seconds_count 1",
		"mpud_backpressure_total 0",
		"mpud_trace_hits_total",
		"mpud_scheduler_rounds_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q", series)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestNodeLabel pins the multi-node scrape contract: with NodeID set the
// /metrics gauges carry a node label (names unchanged), /healthz and the
// request log name the node; without it the exposition is label-free so
// single-node dashboards are untouched.
func TestNodeLabel(t *testing.T) {
	var logs bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logs.Write(p)
	})
	_, ts := newTestServer(t, Config{NodeID: "node7", Logs: w})
	if code, body, _ := postExecute(t, ts.URL, Request{
		Workload: "vecadd", Backend: "racer", Elements: 64,
	}); code != http.StatusOK {
		t.Fatalf("execute: %d %s", code, body)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, series := range []string{
		`mpud_inflight{node="node7"} 0`,
		`mpud_queue_depth{node="node7",pool="RACER/MPU"} 0`,
		`mpud_requests_total{code="200"} 1`, // counters stay label-free
	} {
		if !strings.Contains(text, series) {
			t.Errorf("metrics missing %q:\n%s", series, text)
		}
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var h struct {
		Node string `json:"node"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Node != "node7" {
		t.Errorf("healthz node = %q, want node7", h.Node)
	}
	mu.Lock()
	logged := logs.String()
	mu.Unlock()
	if !strings.Contains(logged, `"node":"node7"`) {
		t.Errorf("request log lacks the node field: %s", logged)
	}

	// Standalone daemons keep the historical label-free gauges.
	_, tsPlain := newTestServer(t, Config{})
	resp2, err := http.Get(tsPlain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	buf.Reset()
	buf.ReadFrom(resp2.Body)
	if !strings.Contains(buf.String(), "mpud_inflight 0") {
		t.Errorf("standalone exposition grew a label:\n%s", buf.String())
	}
}

func TestParsePoolSpecs(t *testing.T) {
	specs, err := ParsePoolSpecs("racer:mpu:2, mimdram:mpu ,dcache:baseline:1")
	if err != nil {
		t.Fatal(err)
	}
	want := []PoolSpec{
		{Backend: "racer", Mode: machine.ModeMPU, Size: 2},
		{Backend: "mimdram", Mode: machine.ModeMPU, Size: 1},
		{Backend: "dcache", Mode: machine.ModeBaseline, Size: 1},
	}
	if fmt.Sprint(specs) != fmt.Sprint(want) {
		t.Fatalf("got %v want %v", specs, want)
	}
	for _, bad := range []string{"", "racer", "racer:warp", "racer:mpu:0", "racer:mpu:2:9"} {
		if _, err := ParsePoolSpecs(bad); err == nil {
			t.Errorf("ParsePoolSpecs(%q) accepted", bad)
		}
	}
}

// TestRequestLogLines pins the structured-log schema.
func TestRequestLogLines(t *testing.T) {
	var logs bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return logs.Write(p)
	})
	_, ts := newTestServer(t, Config{Logs: w})
	if code, body, _ := postExecute(t, ts.URL, Request{
		Workload: "vecadd", Backend: "racer", Elements: 64,
	}); code != http.StatusOK {
		t.Fatalf("execute: %d %s", code, body)
	}
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(logs.String()), "\n")
	mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no log lines")
	}
	var e struct {
		TS       string  `json:"ts"`
		Msg      string  `json:"msg"`
		Pool     string  `json:"pool"`
		Workload string  `json:"workload"`
		Status   int     `json:"status"`
		MS       float64 `json:"ms"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("log line is not JSON: %q", lines[0])
	}
	if e.Msg != "request" || e.Status != 200 || e.Workload != "vecadd" || e.TS == "" || e.Pool != "RACER/MPU" {
		t.Fatalf("bad log entry: %q", lines[0])
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
