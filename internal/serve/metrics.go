package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metrics is a hand-rolled Prometheus-text registry: the daemon is
// stdlib-only, and the handful of series it exposes (request counters by
// status code, queue-depth gauges, batch-size and latency histograms, and
// trace-engine counters rolled up from machine.Stats) do not justify a
// client library. Rendering is deterministic: series are emitted in a fixed
// order with sorted label values.
type metrics struct {
	mu sync.Mutex

	// node is the cluster node label ("" on a standalone daemon). Only the
	// gauges carry it — multi-node scrapes need to distinguish live state
	// per node, and keeping the counters label-free keeps single-node
	// dashboards stable.
	node string

	requests map[string]uint64 // HTTP status code → count
	batches  uint64            // executed batches
	drops    uint64            // admissions refused: queue full or draining

	batchSize histogram // requests coalesced per executed batch
	latency   histogram // request wall time, seconds (admission → response)

	traceHits      uint64
	traceMisses    uint64
	traceFallbacks uint64
	jitCompiles    uint64
	jitReplays     uint64
	roundsTotal    uint64

	inflight int64 // admitted requests not yet answered

	// QoS plane: preemption accounting and per-class latency. The parked
	// gauges track jobs sitting in pool parking lots (and their snapshot
	// bytes); restore is the wall time of Machine.Restore on resumption.
	preemptions   uint64
	preemptSpills uint64
	parkedJobs    int64
	parkedBytes   int64
	restore       histogram
	classSeconds  map[string]*histogram // ClassLatency / ClassBatch

	// Pipeline session plane: live sessions, records streamed, park events
	// (one per advance request — the snapshot written when the session's
	// machine returns to the free list), and the bytes those parked
	// snapshots currently hold.
	sessionsOpen     int64
	sessionRecords   uint64
	sessionParks     uint64
	sessionSnapBytes int64
}

func newMetrics(node string) *metrics {
	requestBounds := []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	return &metrics{
		node:      node,
		requests:  map[string]uint64{},
		batchSize: newHistogram([]float64{1, 2, 4, 8, 16, 32, 64}),
		latency:   newHistogram(requestBounds),
		restore:   newHistogram([]float64{0.00001, 0.0001, 0.001, 0.01, 0.1, 1}),
		classSeconds: map[string]*histogram{
			ClassBatch:   newHistogramPtr(requestBounds),
			ClassLatency: newHistogramPtr(requestBounds),
		},
	}
}

func newHistogramPtr(bounds []float64) *histogram {
	h := newHistogram(bounds)
	return &h
}

// histogram is a cumulative-bucket histogram in the Prometheus exposition
// sense: counts[i] counts observations ≤ bounds[i]; +Inf is implicit.
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.n++
}

func (m *metrics) observeRequest(code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[strconv.Itoa(code)]++
	m.latency.observe(seconds)
}

func (m *metrics) observeDrop(code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[strconv.Itoa(code)]++
	m.drops++
}

func (m *metrics) observeBatch(size int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchSize.observe(float64(size))
}

func (m *metrics) rollupStats(traceHits, traceMisses, traceFallbacks, jitCompiles, jitReplays, rounds uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traceHits += traceHits
	m.traceMisses += traceMisses
	m.traceFallbacks += traceFallbacks
	m.jitCompiles += jitCompiles
	m.jitReplays += jitReplays
	m.roundsTotal += rounds
}

func (m *metrics) addInflight(d int64) {
	m.mu.Lock()
	m.inflight += d
	m.mu.Unlock()
}

// observeClass records one answered request's wall time under its QoS class.
func (m *metrics) observeClass(class string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok := m.classSeconds[class]; ok {
		h.observe(seconds)
	}
}

// observePark counts one batch job preempted into a parking lot.
func (m *metrics) observePark(bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.preemptions++
	m.parkedJobs++
	m.parkedBytes += int64(bytes)
}

// observeSpill counts one preemption boundary where the parking lot was full.
func (m *metrics) observeSpill() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.preemptSpills++
}

// observeUnpark removes one job from the parked gauges as a worker picks it up.
func (m *metrics) observeUnpark(bytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.parkedJobs--
	m.parkedBytes -= int64(bytes)
}

// observeSessionOpen moves the live-session gauge as sessions come and go.
func (m *metrics) observeSessionOpen(d int64) {
	m.mu.Lock()
	m.sessionsOpen += d
	m.mu.Unlock()
}

// observeSessionPark counts one advance request parking its session:
// records streamed, one park event, and the change in held snapshot bytes.
func (m *metrics) observeSessionPark(records int, bytesDelta int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionRecords += uint64(records)
	m.sessionParks++
	m.sessionSnapBytes += int64(bytesDelta)
}

// observeSessionClose retires one session and releases its snapshot bytes.
func (m *metrics) observeSessionClose(snapBytes int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsOpen--
	m.sessionSnapBytes -= int64(snapBytes)
}

// observeRestore records the wall time of one Machine.Restore on resumption.
func (m *metrics) observeRestore(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.restore.observe(seconds)
}

// queueDepth is sampled at render time from the live pools.
type queueDepth struct {
	pool  string
	depth int
}

// render emits the Prometheus text exposition format.
func (m *metrics) render(depths []queueDepth) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sb strings.Builder

	sb.WriteString("# HELP mpud_requests_total Requests answered, by HTTP status code.\n")
	sb.WriteString("# TYPE mpud_requests_total counter\n")
	codes := make([]string, 0, len(m.requests))
	for c := range m.requests {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(&sb, "mpud_requests_total{code=%q} %d\n", c, m.requests[c])
	}

	sb.WriteString("# HELP mpud_backpressure_total Admissions refused with 503 (queue full or draining).\n")
	sb.WriteString("# TYPE mpud_backpressure_total counter\n")
	fmt.Fprintf(&sb, "mpud_backpressure_total %d\n", m.drops)

	sb.WriteString("# HELP mpud_inflight Admitted requests not yet answered.\n")
	sb.WriteString("# TYPE mpud_inflight gauge\n")
	if m.node != "" {
		fmt.Fprintf(&sb, "mpud_inflight{node=%q} %d\n", m.node, m.inflight)
	} else {
		fmt.Fprintf(&sb, "mpud_inflight %d\n", m.inflight)
	}

	sb.WriteString("# HELP mpud_queue_depth Batches waiting in each pool's admission queue.\n")
	sb.WriteString("# TYPE mpud_queue_depth gauge\n")
	for _, d := range depths {
		if m.node != "" {
			fmt.Fprintf(&sb, "mpud_queue_depth{node=%q,pool=%q} %d\n", m.node, d.pool, d.depth)
		} else {
			fmt.Fprintf(&sb, "mpud_queue_depth{pool=%q} %d\n", d.pool, d.depth)
		}
	}

	sb.WriteString("# HELP mpud_batches_total Coalesced batches executed.\n")
	sb.WriteString("# TYPE mpud_batches_total counter\n")
	fmt.Fprintf(&sb, "mpud_batches_total %d\n", m.batches)

	renderHistogram(&sb, "mpud_batch_size", "Requests coalesced into one SPMD run.", &m.batchSize)
	renderHistogram(&sb, "mpud_request_seconds", "Request wall time from admission to response.", &m.latency)

	sb.WriteString("# HELP mpud_trace_hits_total Trace-engine replay hits rolled up from run stats.\n")
	sb.WriteString("# TYPE mpud_trace_hits_total counter\n")
	fmt.Fprintf(&sb, "mpud_trace_hits_total %d\n", m.traceHits)
	sb.WriteString("# HELP mpud_trace_misses_total Trace-engine compile rounds rolled up from run stats.\n")
	sb.WriteString("# TYPE mpud_trace_misses_total counter\n")
	fmt.Fprintf(&sb, "mpud_trace_misses_total %d\n", m.traceMisses)
	sb.WriteString("# HELP mpud_trace_fallbacks_total Interpreted rounds (untraceable bodies) rolled up from run stats.\n")
	sb.WriteString("# TYPE mpud_trace_fallbacks_total counter\n")
	fmt.Fprintf(&sb, "mpud_trace_fallbacks_total %d\n", m.traceFallbacks)
	sb.WriteString("# HELP mpud_jit_compiles_total Trace bodies JIT-compiled to closure chains, rolled up from run stats.\n")
	sb.WriteString("# TYPE mpud_jit_compiles_total counter\n")
	fmt.Fprintf(&sb, "mpud_jit_compiles_total %d\n", m.jitCompiles)
	sb.WriteString("# HELP mpud_jit_replays_total Replay rounds served by JIT-compiled closure chains, rolled up from run stats.\n")
	sb.WriteString("# TYPE mpud_jit_replays_total counter\n")
	fmt.Fprintf(&sb, "mpud_jit_replays_total %d\n", m.jitReplays)
	sb.WriteString("# HELP mpud_scheduler_rounds_total Machine scheduler rounds rolled up from run stats.\n")
	sb.WriteString("# TYPE mpud_scheduler_rounds_total counter\n")
	fmt.Fprintf(&sb, "mpud_scheduler_rounds_total %d\n", m.roundsTotal)

	sb.WriteString("# HELP mpud_preemptions_total Batch jobs parked at an ensemble boundary to admit latency work.\n")
	sb.WriteString("# TYPE mpud_preemptions_total counter\n")
	fmt.Fprintf(&sb, "mpud_preemptions_total %d\n", m.preemptions)

	sb.WriteString("# HELP mpud_preempt_spills_total Preemption boundaries where the parking lot was full and the job resumed in place.\n")
	sb.WriteString("# TYPE mpud_preempt_spills_total counter\n")
	fmt.Fprintf(&sb, "mpud_preempt_spills_total %d\n", m.preemptSpills)

	sb.WriteString("# HELP mpud_parked_jobs Preempted batch jobs currently held in parking lots.\n")
	sb.WriteString("# TYPE mpud_parked_jobs gauge\n")
	if m.node != "" {
		fmt.Fprintf(&sb, "mpud_parked_jobs{node=%q} %d\n", m.node, m.parkedJobs)
	} else {
		fmt.Fprintf(&sb, "mpud_parked_jobs %d\n", m.parkedJobs)
	}

	sb.WriteString("# HELP mpud_parked_bytes Snapshot bytes currently held in parking lots.\n")
	sb.WriteString("# TYPE mpud_parked_bytes gauge\n")
	if m.node != "" {
		fmt.Fprintf(&sb, "mpud_parked_bytes{node=%q} %d\n", m.node, m.parkedBytes)
	} else {
		fmt.Fprintf(&sb, "mpud_parked_bytes %d\n", m.parkedBytes)
	}

	renderHistogram(&sb, "mpud_restore_seconds", "Machine.Restore wall time when resuming a parked job.", &m.restore)
	renderClassHistogram(&sb, "mpud_class_request_seconds", "Request wall time from admission to response, by QoS class.", m.classSeconds)

	sb.WriteString("# HELP mpud_sessions Live pipeline sessions.\n")
	sb.WriteString("# TYPE mpud_sessions gauge\n")
	if m.node != "" {
		fmt.Fprintf(&sb, "mpud_sessions{node=%q} %d\n", m.node, m.sessionsOpen)
	} else {
		fmt.Fprintf(&sb, "mpud_sessions %d\n", m.sessionsOpen)
	}

	sb.WriteString("# HELP mpud_session_records_total Records streamed through pipeline sessions.\n")
	sb.WriteString("# TYPE mpud_session_records_total counter\n")
	fmt.Fprintf(&sb, "mpud_session_records_total %d\n", m.sessionRecords)

	sb.WriteString("# HELP mpud_session_parks_total Session snapshots parked as advance requests released their machines.\n")
	sb.WriteString("# TYPE mpud_session_parks_total counter\n")
	fmt.Fprintf(&sb, "mpud_session_parks_total %d\n", m.sessionParks)

	sb.WriteString("# HELP mpud_session_snapshot_bytes Snapshot bytes currently held by parked pipeline sessions.\n")
	sb.WriteString("# TYPE mpud_session_snapshot_bytes gauge\n")
	if m.node != "" {
		fmt.Fprintf(&sb, "mpud_session_snapshot_bytes{node=%q} %d\n", m.node, m.sessionSnapBytes)
	} else {
		fmt.Fprintf(&sb, "mpud_session_snapshot_bytes %d\n", m.sessionSnapBytes)
	}

	return sb.String()
}

// renderClassHistogram emits one histogram per QoS class under a shared
// metric name, classes in sorted order.
func renderClassHistogram(sb *strings.Builder, name, help string, classes map[string]*histogram) {
	fmt.Fprintf(sb, "# HELP %s %s\n", name, help)
	fmt.Fprintf(sb, "# TYPE %s histogram\n", name)
	keys := make([]string, 0, len(classes))
	for c := range classes {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	for _, c := range keys {
		h := classes[c]
		for i, b := range h.bounds {
			fmt.Fprintf(sb, "%s_bucket{class=%q,le=%q} %d\n", name, c, strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
		}
		fmt.Fprintf(sb, "%s_bucket{class=%q,le=\"+Inf\"} %d\n", name, c, h.n)
		fmt.Fprintf(sb, "%s_sum{class=%q} %s\n", name, c, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(sb, "%s_count{class=%q} %d\n", name, c, h.n)
	}
}

func renderHistogram(sb *strings.Builder, name, help string, h *histogram) {
	fmt.Fprintf(sb, "# HELP %s %s\n", name, help)
	fmt.Fprintf(sb, "# TYPE %s histogram\n", name)
	for i, b := range h.bounds {
		fmt.Fprintf(sb, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
	}
	fmt.Fprintf(sb, "%s_bucket{le=\"+Inf\"} %d\n", name, h.n)
	fmt.Fprintf(sb, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(sb, "%s_count %d\n", name, h.n)
}
