package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

// streamSource is the smallest resident pipeline: Split forwards each
// record's r0 to a Reduce whose accumulator (r48) persists across records —
// and, because sessions park between requests, across HTTP requests too.
const streamSource = `
src(Split) OUT -> IN total(Reduce)
'1' -> REGS src
'add' -> OP total
`

func doPipeline(t *testing.T, method, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes(), resp.Header
}

func createPipeline(t *testing.T, url string, req PipelineRequest) *PipelineResponse {
	t.Helper()
	code, body, _ := doPipeline(t, http.MethodPost, url+"/v1/pipelines", req)
	if code != http.StatusOK {
		t.Fatalf("create status %d: %s", code, body)
	}
	var pr PipelineResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	return &pr
}

func advancePipeline(t *testing.T, url, id string, req AdvanceRequest) *AdvanceResponse {
	t.Helper()
	code, body, _ := doPipeline(t, http.MethodPost, url+"/v1/pipelines/"+id, req)
	if code != http.StatusOK {
		t.Fatalf("advance status %d: %s", code, body)
	}
	var ar AdvanceResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return &ar
}

// TestPipelineSessionStreaming is the session plane's end-to-end contract:
// one compile, then records streamed across separate HTTP requests with the
// machine released between them, a resident accumulator surviving the
// park/restore cycle, and zero recompilation after the first request.
func TestPipelineSessionStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	pr := createPipeline(t, ts.URL, PipelineRequest{Source: streamSource, Backend: "racer"})
	if pr.MPUs != 2 || pr.Lanes == 0 || len(pr.Nodes) != 2 {
		t.Fatalf("bad placement: %+v", pr)
	}

	lanes := pr.Lanes
	record := func(base uint64) PipelineRecord {
		vals := make([]uint64, lanes)
		for i := range vals {
			vals[i] = base
		}
		return PipelineRecord{
			Sets:  []PipelineSet{{Node: "src", Reg: 0, Values: vals}},
			Dumps: []PipelineRef{{Node: "total", Reg: 48}},
		}
	}

	// Request 1: three records. The first pays trace recording; the session
	// summary therefore reports misses.
	ar := advancePipeline(t, ts.URL, pr.ID, AdvanceRequest{
		Records: []PipelineRecord{record(1), record(2), record(3)},
	})
	if ar.Summary.Records != 3 || ar.Summary.TotalRecords != 3 {
		t.Fatalf("summary %+v", ar.Summary)
	}
	if ar.Summary.TraceMisses == 0 {
		t.Fatalf("first request recorded no traces: %+v", ar.Summary)
	}
	if got := ar.Records[2].Dumps[0].Values[0]; got != 6 {
		t.Fatalf("accumulator after request 1 = %d, want 6", got)
	}

	// The machine is parked between requests: no session pins one.
	code, body, _ := doPipeline(t, http.MethodGet, ts.URL+"/v1/pipelines/"+pr.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var st SessionStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Parked || st.Busy || st.SnapshotBytes == 0 || st.Records != 3 {
		t.Fatalf("status after request 1: %+v", st)
	}

	// Requests 2..4: the resident accumulator carries across the
	// park/restore boundary, and no record recompiles anything.
	want := uint64(6)
	for r := 2; r <= 4; r++ {
		ar = advancePipeline(t, ts.URL, pr.ID, AdvanceRequest{
			Records: []PipelineRecord{record(10), record(20)},
		})
		want += 30
		if ar.Summary.TraceMisses != 0 || ar.Summary.JITCompiles != 0 {
			t.Fatalf("request %d recompiled: %+v", r, ar.Summary)
		}
		if ar.Summary.TraceHits == 0 {
			t.Fatalf("request %d did not replay traces: %+v", r, ar.Summary)
		}
		if got := ar.Records[1].Dumps[0].Values[0]; got != want {
			t.Fatalf("accumulator after request %d = %d, want %d", r, got, want)
		}
	}
	if ar.Summary.TotalRecords != 9 {
		t.Fatalf("total records = %d, want 9", ar.Summary.TotalRecords)
	}

	// Close retires the session; the id stops resolving.
	code, body, _ = doPipeline(t, http.MethodDelete, ts.URL+"/v1/pipelines/"+pr.ID, nil)
	if code != http.StatusOK {
		t.Fatalf("close status %d: %s", code, body)
	}
	code, _, _ = doPipeline(t, http.MethodGet, ts.URL+"/v1/pipelines/"+pr.ID, nil)
	if code != http.StatusNotFound {
		t.Fatalf("closed session still resolves: %d", code)
	}
}

// TestPipelineAdmission pins the error taxonomy: grammar and component
// errors are plain 400s, graphs rejected by machine-level verification
// (deadlocking composition, geometry overflow) are 422s carrying findings.
func TestPipelineAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(req PipelineRequest) (int, errorBody) {
		t.Helper()
		code, body, _ := doPipeline(t, http.MethodPost, ts.URL+"/v1/pipelines", req)
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("non-JSON error body %q: %v", body, err)
		}
		return code, eb
	}

	// Parse error: plain 400, no findings.
	code, eb := post(PipelineRequest{Source: "a(Map OUT -> ", Backend: "racer"})
	if code != http.StatusBadRequest || eb.Error == "" || len(eb.Findings) != 0 {
		t.Fatalf("parse error: %d %+v", code, eb)
	}

	// Component error: plain 400.
	code, eb = post(PipelineRequest{Source: "a(Nope) OUT -> IN b(Map)", Backend: "racer"})
	if code != http.StatusBadRequest || len(eb.Findings) != 0 {
		t.Fatalf("component error: %d %+v", code, eb)
	}

	// Mis-phased ring: the composition deadlocks, commlint proves it, and
	// the 422 carries the counterexample findings.
	deadlock := "a(EDStep) OUT -> IN b(EDStep)\nb OUT -> IN a\n'1' -> STEPS a\n'2' -> STEPS b"
	code, eb = post(PipelineRequest{Source: deadlock, Backend: "racer"})
	if code != http.StatusUnprocessableEntity || len(eb.Findings) == 0 {
		t.Fatalf("deadlocking ring: %d %+v", code, eb)
	}

	// Oversized graph: the per-request MPU cap turns into the geometry
	// finding, same 422 envelope.
	big := "n0(Split) OUT -> IN n1(Filter)\nn1 OUT -> IN n2(Filter)\nn2 OUT -> IN n3(Filter)"
	code, eb = post(PipelineRequest{Source: big, Backend: "racer", MaxMPUs: 2})
	if code != http.StatusUnprocessableEntity || len(eb.Findings) != 1 || eb.Findings[0].Check != "pipeline-geometry" {
		t.Fatalf("oversized graph: %d %+v", code, eb)
	}
}

// TestPipelineLimits pins the table bound (503 + Retry-After), unknown-id
// 404s, bad-record 400s, and drain semantics (creates refused, advances on
// admitted sessions keep flowing).
func TestPipelineLimits(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 1})
	pr := createPipeline(t, ts.URL, PipelineRequest{Source: streamSource, Backend: "racer"})

	code, body, hdr := doPipeline(t, http.MethodPost, ts.URL+"/v1/pipelines",
		PipelineRequest{Source: streamSource, Backend: "racer"})
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("full table: %d %s (Retry-After %q)", code, body, hdr.Get("Retry-After"))
	}

	code, _, _ = doPipeline(t, http.MethodPost, ts.URL+"/v1/pipelines/nope", AdvanceRequest{
		Records: []PipelineRecord{{}},
	})
	if code != http.StatusNotFound {
		t.Fatalf("unknown id advance: %d", code)
	}

	// A record naming an unknown node fails that request with a 400 but
	// leaves the session usable.
	code, body, _ = doPipeline(t, http.MethodPost, ts.URL+"/v1/pipelines/"+pr.ID, AdvanceRequest{
		Records: []PipelineRecord{{Sets: []PipelineSet{{Node: "ghost", Reg: 0, Values: []uint64{1}}}}},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown node: %d %s", code, body)
	}
	vals := make([]uint64, pr.Lanes)
	ar := advancePipeline(t, ts.URL, pr.ID, AdvanceRequest{
		Records: []PipelineRecord{{Sets: []PipelineSet{{Node: "src", Reg: 0, Values: vals}}}},
	})
	if ar.Summary.Records != 1 {
		t.Fatalf("session unusable after bad record: %+v", ar.Summary)
	}

	// Drain: new sessions are refused, admitted ones keep streaming.
	s.Drain()
	code, _, _ = doPipeline(t, http.MethodPost, ts.URL+"/v1/pipelines",
		PipelineRequest{Source: streamSource, Backend: "racer"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: %d", code)
	}
	ar = advancePipeline(t, ts.URL, pr.ID, AdvanceRequest{
		Records: []PipelineRecord{{Sets: []PipelineSet{{Node: "src", Reg: 0, Values: vals}}}},
	})
	if ar.Summary.Records != 1 {
		t.Fatalf("advance during drain: %+v", ar.Summary)
	}

	// The listing shows the one live session.
	code, body, _ = doPipeline(t, http.MethodGet, ts.URL+"/v1/pipelines", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d %s", code, body)
	}
	var list struct {
		Sessions []*SessionStatus `json:"sessions"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != 1 || list.Sessions[0].ID != pr.ID {
		t.Fatalf("list = %s", body)
	}
}

// TestPipelineSessionParity: a record streamed through a parked-and-restored
// session answers with the same dump values as the same records streamed in
// one request — parking is invisible to results.
func TestPipelineSessionParity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	one := createPipeline(t, ts.URL, PipelineRequest{Source: streamSource, Backend: "racer"})
	two := createPipeline(t, ts.URL, PipelineRequest{Source: streamSource, Backend: "racer"})

	records := make([]PipelineRecord, 6)
	for i := range records {
		vals := make([]uint64, one.Lanes)
		for l := range vals {
			vals[l] = uint64(i*one.Lanes + l)
		}
		records[i] = PipelineRecord{
			Sets:  []PipelineSet{{Node: "src", Reg: 0, Values: vals}},
			Dumps: []PipelineRef{{Node: "total", Reg: 48}},
		}
	}

	// Session one: all six in one request. Session two: one per request.
	all := advancePipeline(t, ts.URL, one.ID, AdvanceRequest{Records: records})
	var split []RecordResult
	for _, r := range records {
		ar := advancePipeline(t, ts.URL, two.ID, AdvanceRequest{Records: []PipelineRecord{r}})
		split = append(split, ar.Records...)
	}
	for i := range records {
		a, _ := json.Marshal(all.Records[i].Dumps)
		b, _ := json.Marshal(split[i].Dumps)
		if !bytes.Equal(a, b) {
			t.Fatalf("record %d diverged across park boundaries:\none: %s\nsix: %s", i, a, b)
		}
	}
	if len(split) != len(records) {
		t.Fatalf("split stream answered %d records", len(split))
	}
}
