package backends

import (
	"testing"

	"mpu/internal/micro"
)

func TestAllSpecsValid(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base := RACER()
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Lanes = 0 },
		func(s *Spec) { s.ActiveVRFsPerRFH = 0 },
		func(s *Spec) { s.ActiveVRFsPerRFH = s.VRFsPerRFH + 1 },
		func(s *Spec) { s.CyclesPerMicroOp = 0 },
		func(s *Spec) { s.BaselineUnits = s.MPUs - 1 },
	}
	for i, mut := range mutations {
		s := *base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	_ = base.Validate()
}

func TestGeometryDerivations(t *testing.T) {
	r := RACER()
	if got := r.VRFsPerMPU(); got != 512 {
		t.Errorf("RACER VRFsPerMPU = %d, want 512 (matches the 512-bit activation board)", got)
	}
	if got := r.TotalVRFs(); got != 512*497 {
		t.Errorf("RACER TotalVRFs = %d", got)
	}
	if got := r.ActiveVRFsPerMPU(); got != 8 {
		t.Errorf("RACER ActiveVRFsPerMPU = %d, want 8 (one per cluster)", got)
	}
	if got := r.ActiveLanes(); got != 8*497*64 {
		t.Errorf("RACER ActiveLanes = %d", got)
	}
}

func TestCapacityFactor(t *testing.T) {
	r := RACER()
	f := r.CapacityFactor()
	if f <= 0.95 || f >= 1.0 {
		t.Errorf("RACER capacity factor = %v, want a few percent below 1 (iso-area derate)", f)
	}
	if dc := DualityCache().CapacityFactor(); dc != 1.0 {
		t.Errorf("DualityCache capacity factor = %v, want 1.0", dc)
	}
}

// TestThermalLimitsMatchTableIII verifies the Fig. 5 physics behind the
// ActiveVRFsPerRFH parameters: RACER exceeds air cooling well before full
// activation (hence 1 active pipeline per cluster), while MIMDRAM and
// Duality Cache can activate every VRF.
func TestThermalLimitsMatchTableIII(t *testing.T) {
	r := RACER()
	if got := r.PowerDensity(r.TotalVRFs()); got < AirCoolLimitWPerCM2 {
		t.Errorf("RACER fully active density %.0f W/cm² does not exceed the limit", got)
	}
	if got := r.PowerDensity(r.ActiveVRFsPerMPU() * r.MPUs); got > AirCoolLimitWPerCM2 {
		t.Errorf("RACER scheduled density %.1f W/cm² exceeds the limit", got)
	}
	// The derived thermal maximum must justify ~1 active VRF per RFH.
	maxPerRFH := r.MaxActiveVRFsThermal() / (r.MPUs * r.RFHsPerMPU)
	if maxPerRFH > 8 {
		t.Errorf("RACER thermal budget allows %d VRFs/RFH; expected ~1", maxPerRFH)
	}
	for _, s := range []*Spec{MIMDRAM(), DualityCache()} {
		if got := s.PowerDensity(s.TotalVRFs()); got > AirCoolLimitWPerCM2 {
			t.Errorf("%s fully active density %.1f W/cm² exceeds the limit; Table III allows full activation", s.Name, got)
		}
	}
}

func TestPowerDensityMonotone(t *testing.T) {
	s := MIMDRAM()
	prev := -1.0
	for n := 0; n <= s.TotalVRFs(); n += s.TotalVRFs() / 8 {
		d := s.PowerDensity(n)
		if d < prev {
			t.Fatalf("power density not monotone at %d arrays", n)
		}
		prev = d
	}
}

func TestCapabilitySets(t *testing.T) {
	if !RACER().Caps.Has(micro.NOR) || RACER().Caps.Has(micro.FADD) {
		t.Error("RACER capability set wrong")
	}
	if !MIMDRAM().Caps.Has(micro.MAJ) || MIMDRAM().Caps.Has(micro.FADD) {
		t.Error("MIMDRAM capability set wrong")
	}
	if !DualityCache().Caps.Has(micro.FADD) || !DualityCache().Caps.Has(micro.MUX) {
		t.Error("DualityCache capability set wrong")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"racer", "RACER", "MIMDRAM", "mimdram", "dcache", "Duality-Cache", "duality cache"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("liquid-silicon"); err == nil {
		t.Error("ByName accepted unknown back end")
	}
}

func TestDualityCacheCapacity(t *testing.T) {
	dc := DualityCache()
	if dc.CapacityGB != 0.2 {
		t.Errorf("DualityCache capacity = %v GB, want the paper's 0.2 GB", dc.CapacityGB)
	}
	if !dc.OnChipCPU {
		t.Error("DualityCache must be marked on-chip with the CPU")
	}
	if RACER().OnChipCPU {
		t.Error("RACER must be off-chip from the CPU")
	}
}
