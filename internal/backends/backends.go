// Package backends describes the PUM datapath microarchitectures the MPU
// front end plugs into (§IV): geometry of the VRF/RFH mapping, the native
// micro-op capability set, per-micro-op timing and energy, and the physical
// parameters behind the thermal scheduling constraints.
//
// The three shipped back ends mirror the paper's evaluation targets:
// ReRAM-based RACER (bit-pipelined NOR), DRAM-based MIMDRAM (triple-row
// activation), and SRAM-based Duality Cache (bitline logic plus CMOS full
// adders). Constants derive from the source papers and Table III; see
// DESIGN.md for the substitution notes.
package backends

import (
	"fmt"

	"mpu/internal/micro"
)

// Spec is the designer-supplied description of a datapath back end. It is
// what a hardware designer provides when integrating the MPU front end
// (§IV): the VRF/RFH mapping plus the constraint and cost model the runtime
// needs.
type Spec struct {
	Name string

	// Caps is the native micro-op set; the I2M decoder lowers the MPU ISA
	// onto exactly these primitives.
	Caps micro.CapabilitySet

	// Geometry. A VRF holds 64 vector registers of 64 bits across Lanes
	// lanes; VRFsPerRFH VRFs share constraint-relevant hardware (a RACER
	// cluster's PCC, a MIMDRAM μPE, a Duality Cache issue window).
	Lanes      int
	VRFsPerRFH int
	RFHsPerMPU int

	// MPUs is the iso-area MPU count (Table III); BaselineUnits is the
	// number of equivalent datapath units the original design fits in the
	// same 4 cm² without MPU front ends. Their ratio is the capacity the
	// MPU configuration gives up.
	MPUs          int
	BaselineUnits int

	// ActiveVRFsPerRFH is the constraint the scheduler enforces (thermal
	// for RACER/MIMDRAM, shared instruction controllers for Duality Cache).
	ActiveVRFsPerRFH int

	// Timing. The front end issues one micro-op per cycle per MPU
	// (Table III); CyclesPerMicroOp is the effective latency between
	// dependent micro-ops in the same array (bit-pipelining hides most of
	// it on RACER; DRAM TRA timing dominates on MIMDRAM).
	ClockGHz         float64
	CyclesPerMicroOp int

	// Energy: one micro-op on one active VRF (all lanes of one column op).
	MicroOpEnergyPJ float64

	// Physical parameters for the power-density model (Fig. 5).
	VRFActivePowerMW float64
	ChipAreaCM2      float64
	MemPerMPUMB      int

	// OnChipCPU marks datapaths co-located with the host CPU (Duality
	// Cache): Baseline offloads are cheap, and external memory pressure
	// appears instead.
	OnChipCPU bool

	// CapacityGB is the usable data capacity of the chip; kernels whose
	// working set exceeds it pay external-memory transfer costs.
	CapacityGB float64

	// BaselineEnergyFactor inflates Baseline datapath energy to model the
	// original designs' less efficient micro-op expansion and per-command
	// control switching (§VIII-B reports 49.8% / 49.2% / 22.6% processing
	// energy reductions even ignoring CPU energy).
	BaselineEnergyFactor float64
}

// Validate checks internal consistency of the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("backends: spec has no name")
	case s.Lanes <= 0 || s.VRFsPerRFH <= 0 || s.RFHsPerMPU <= 0 || s.MPUs <= 0:
		return fmt.Errorf("backends: %s: non-positive geometry", s.Name)
	case s.ActiveVRFsPerRFH <= 0 || s.ActiveVRFsPerRFH > s.VRFsPerRFH:
		return fmt.Errorf("backends: %s: active VRF limit %d outside [1,%d]",
			s.Name, s.ActiveVRFsPerRFH, s.VRFsPerRFH)
	case s.CyclesPerMicroOp <= 0 || s.ClockGHz <= 0:
		return fmt.Errorf("backends: %s: non-positive timing", s.Name)
	case s.BaselineUnits < s.MPUs:
		return fmt.Errorf("backends: %s: baseline units %d below iso-area MPUs %d",
			s.Name, s.BaselineUnits, s.MPUs)
	}
	return nil
}

// VRFsPerMPU returns the number of VRFs one MPU manages.
func (s *Spec) VRFsPerMPU() int { return s.VRFsPerRFH * s.RFHsPerMPU }

// TotalVRFs returns the chip-wide VRF count in the MPU configuration.
func (s *Spec) TotalVRFs() int { return s.VRFsPerMPU() * s.MPUs }

// ActiveVRFsPerMPU returns how many VRFs an MPU may activate at once.
func (s *Spec) ActiveVRFsPerMPU() int { return s.ActiveVRFsPerRFH * s.RFHsPerMPU }

// ActiveLanes returns the chip-wide number of simultaneously computing
// vector lanes under the scheduling constraint.
func (s *Spec) ActiveLanes() int { return s.ActiveVRFsPerMPU() * s.MPUs * s.Lanes }

// CapacityFactor is the fraction of baseline datapath capacity the iso-area
// MPU configuration retains (the source of the small basic-kernel slowdowns
// in §VIII-B).
func (s *Spec) CapacityFactor() float64 {
	return float64(s.MPUs) / float64(s.BaselineUnits)
}

// PowerDensity returns chip power density in W/cm² with the given number of
// arrays (VRFs) active — the Fig. 5 curve for this datapath.
func (s *Spec) PowerDensity(activeVRFs int) float64 {
	return float64(activeVRFs) * s.VRFActivePowerMW / 1000 / s.ChipAreaCM2
}

// AirCoolLimitWPerCM2 is the sustained air-cooling power-density limit used
// to derive the per-RFH activation caps (after Huang et al. [44]).
const AirCoolLimitWPerCM2 = 100.0

// MaxActiveVRFsThermal returns the largest chip-wide active-array count that
// stays under the air-cooling limit.
func (s *Spec) MaxActiveVRFsThermal() int {
	return int(AirCoolLimitWPerCM2 * s.ChipAreaCM2 * 1000 / s.VRFActivePowerMW)
}

// RACER returns the ReRAM-based RACER back end [97, 98]. A VRF is one
// 64-tile bit-pipeline (64 lanes × 64 registers of 64 bits); an RFH is one
// 64-pipeline cluster sharing a PCC, thermally limited to a single active
// pipeline.
func RACER() *Spec {
	return &Spec{
		Name:                 "RACER",
		Caps:                 micro.NewCapabilitySet(micro.NOR),
		Lanes:                64,
		VRFsPerRFH:           64,
		RFHsPerMPU:           8,
		MPUs:                 497,
		BaselineUnits:        512,
		ActiveVRFsPerRFH:     1,
		ClockGHz:             1.0,
		CyclesPerMicroOp:     2, // 10 ns ReRAM NOR, ~5× hidden by bit-pipelining
		MicroOpEnergyPJ:      0.64,
		VRFActivePowerMW:     12,
		ChipAreaCM2:          4.0,
		MemPerMPUMB:          16,
		CapacityGB:           float64(497*16) / 1024,
		BaselineEnergyFactor: 1.0 / (1 - 0.498),
	}
}

// MIMDRAM returns the DRAM-based MIMDRAM back end [78]. A VRF is one DRAM
// mat driven by TRA micro-ops; an RFH is one μPE's mat group. Thermal
// density allows every mat in a μPE to be active (Table III's 256 limit
// exceeds the 64 VRFs an RFH holds, so the effective limit is 64).
func MIMDRAM() *Spec {
	return &Spec{
		Name:                 "MIMDRAM",
		Caps:                 micro.NewCapabilitySet(micro.MAJ, micro.NOT, micro.AND, micro.OR),
		Lanes:                64,
		VRFsPerRFH:           64,
		RFHsPerMPU:           8,
		MPUs:                 450,
		BaselineUnits:        464,
		ActiveVRFsPerRFH:     64,
		ClockGHz:             1.0,
		CyclesPerMicroOp:     35, // DRAM triple-row-activation timing
		MicroOpEnergyPJ:      49,
		VRFActivePowerMW:     1.4,
		ChipAreaCM2:          4.0,
		MemPerMPUMB:          16,
		CapacityGB:           float64(450*16) / 1024,
		BaselineEnergyFactor: 1.0 / (1 - 0.492),
	}
}

// DualityCache returns the SRAM-based Duality Cache back end [31]. A VRF is
// one SRAM subarray; an RFH is one issue window whose loop FSM serves as the
// vector mapper. There is no thermal throttle — the limit is the shared
// instruction controllers, which the issue-window mapping already encodes —
// but SRAM density caps the chip at 0.2 GB.
func DualityCache() *Spec {
	return &Spec{
		Name: "DualityCache",
		Caps: micro.NewCapabilitySet(micro.AND, micro.OR, micro.XOR, micro.NOT,
			micro.FADD, micro.MUX),
		Lanes:                64,
		VRFsPerRFH:           64,
		RFHsPerMPU:           8,
		MPUs:                 12,
		BaselineUnits:        12,
		ActiveVRFsPerRFH:     64,
		ClockGHz:             1.0,
		CyclesPerMicroOp:     14, // Duality Cache operation latency (§VIII-C)
		MicroOpEnergyPJ:      5,
		VRFActivePowerMW:     5,
		ChipAreaCM2:          4.0,
		MemPerMPUMB:          16,
		OnChipCPU:            true,
		CapacityGB:           0.2,
		BaselineEnergyFactor: 1.0 / (1 - 0.226),
	}
}

// SIMDRAM returns an Ambit/SIMDRAM-style commodity-DRAM back end
// [40, 87]. It is not part of the paper's evaluation; it ships as the
// §IX portability demonstration: a datapath whose native repertoire is
// ONLY triple-row-activation majority plus dual-contact-cell NOT (no AND/OR
// presets), onto which the unmodified recipe library still lowers the whole
// MPU ISA. Geometry follows unmodified DDR4 subarrays: wide rows (256
// lanes), conservative concurrent activation.
func SIMDRAM() *Spec {
	return &Spec{
		Name:                 "SIMDRAM",
		Caps:                 micro.NewCapabilitySet(micro.MAJ, micro.NOT),
		Lanes:                256,
		VRFsPerRFH:           64,
		RFHsPerMPU:           8,
		MPUs:                 112,
		BaselineUnits:        116,
		ActiveVRFsPerRFH:     16, // commodity DRAM power-delivery limit
		ClockGHz:             1.0,
		CyclesPerMicroOp:     49, // AAP command sequence (two ACT + PRE)
		MicroOpEnergyPJ:      182,
		VRFActivePowerMW:     3.7,
		ChipAreaCM2:          4.0,
		MemPerMPUMB:          64,
		CapacityGB:           float64(112*64) / 1024,
		BaselineEnergyFactor: 1.9,
	}
}

// All returns fresh specs for every back end of the paper's evaluation, in
// the paper's order. SIMDRAM (the portability demo) is not included; fetch
// it explicitly.
func All() []*Spec {
	return []*Spec{RACER(), MIMDRAM(), DualityCache()}
}

// ByName returns the named back end ("racer", "mimdram", "dcache"/
// "dualitycache", case-insensitive) or an error.
func ByName(name string) (*Spec, error) {
	switch normalize(name) {
	case "racer":
		return RACER(), nil
	case "mimdram":
		return MIMDRAM(), nil
	case "dcache", "dualitycache":
		return DualityCache(), nil
	case "simdram", "ambit":
		return SIMDRAM(), nil
	}
	return nil, fmt.Errorf("backends: unknown back end %q", name)
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c == '-' || c == '_' || c == ' ' {
			continue
		}
		out = append(out, c)
	}
	return string(out)
}
