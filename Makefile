GO ?= go

.PHONY: all build test vet race race-short repolint staticcheck govulncheck preflight fuzz check bench bench-serve bench-cluster bench-qos bench-pipeline serve-smoke cluster-smoke pipeline-smoke figures clean

# Pinned staticcheck release — CI installs exactly this version so findings
# are reproducible; locally the target is skipped (with a note) when the
# binary is not on PATH, because the build must stay stdlib-only offline.
STATICCHECK_VERSION ?= 2025.1.1

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repository hygiene rules go vet does not cover (seeded randomness only,
# bit-plane mutation stays behind internal/vrf).
repolint:
	$(GO) run ./cmd/repolint

# Pinned staticcheck, if installed (CI pins $(STATICCHECK_VERSION) via
# `go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)`).
# Offline checkouts without the binary skip the target instead of failing.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

# Known-vulnerability scan over the module graph (stdlib-only here, so it
# effectively audits the toolchain). CI installs the scanner; offline
# checkouts without the binary skip the target instead of failing.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI installs golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Machine-level static verification (commlint) of every shipped kernel and
# application — the same sweep `mastodon preflight` runs before figures.
preflight:
	$(GO) run ./cmd/mastodon preflight

# The race detector slows the simulator ~10x, so the full-suite run needs
# more than `go test`'s default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# The concurrency-sensitive packages only (the sweep worker pool and the
# linter the machine calls from strict mode) plus the trace-engine parity
# difftest, whose replay path shares compiled traces and memoized recipe
# expansions across sweep workers, the parallel-scheduler parity difftest,
# which fans cores out across scheduler goroutines, and the serve-layer
# parity and warm-pool hammer tests — fast enough for every CI run.
race-short:
	$(GO) test -race -timeout 30m ./internal/sweep ./internal/lint
	$(GO) test -race -timeout 30m -run 'TestTraceParity|TestJITParityRandom|TestParallelMachine|TestParallelDeadlock|TestSnapshotResumeParity' ./internal/machine
	$(GO) test -race -timeout 30m -run 'TestServeParity|TestServePool|TestServePreempt|TestServeNoPreempt|TestParkedGauges|TestPipelineSession' ./internal/serve
	$(GO) test -race -timeout 30m -run 'TestRouterParity|TestRollingDrain|TestFairAdmission|TestRouterPipeline' ./internal/router
	$(GO) test -race -timeout 30m -run 'TestPipelineParity' ./internal/fbp

# Bounded runs of the differential oracles: random programs the linter
# passes must execute without ensemble or capacity faults, and random
# straight-line bodies must produce identical planes and stats whether
# rounds run JIT-compiled, step-interpreted, or fully interpreted. The comm
# oracle cross-checks commlint against the real scheduler: verdict-clean
# program sets must run, flagged ones must deadlock. The FBP oracles check
# that the pipeline parser never panics and that every graph the compiler
# accepts is deadlock-free by construction (lint-clean and actually runs).
fuzz:
	$(GO) test -fuzz=FuzzLintSoundness -fuzztime=30s ./internal/isa
	$(GO) test -fuzz=FuzzJITParity -fuzztime=30s ./internal/machine
	$(GO) test -fuzz=FuzzCommSoundness -fuzztime=30s ./internal/lint/comm
	$(GO) test -fuzz=FuzzSnapshotRoundTrip -fuzztime=30s -fuzzminimizetime=2s ./internal/machine
	$(GO) test -fuzz=FuzzFBPParse -fuzztime=30s ./internal/fbp
	$(GO) test -fuzz=FuzzPipelineSoundness -fuzztime=30s ./internal/fbp

# check is the pre-merge gate: build + vet + full test suite + repo lint +
# staticcheck + govulncheck (each when installed). Run `make race` (full
# suite under the race detector) before touching the sweep engine's
# concurrency.
check: build vet test repolint staticcheck govulncheck

# One iteration of every benchmark — a smoke run (also in CI) that keeps the
# reproduction harness executable; steady-state numbers need larger
# -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x

# End-to-end daemon check (also in CI): start mpud on a random port, hit
# /healthz, execute one kernel, read /metrics, drain on SIGTERM, exit.
serve-smoke:
	$(GO) run ./cmd/mpud -smoke -quiet

# End-to-end cluster check (also in CI): the mpurouter self-test (2-node
# in-process cluster, routed/direct stats parity), then ~5s of open-loop
# Poisson load through a routed 2-node cluster — any dropped request or
# transport error fails the run.
cluster-smoke:
	$(GO) run ./cmd/mpurouter -smoke
	$(GO) run ./cmd/mpuload -nodes 2 -rate 150 -tenants 2 -duration 5s -elements 64 -strict

# End-to-end pipeline check (also in CI): compile a .fbp graph in-process,
# open a persistent session against a self-hosted daemon, stream records
# across requests (parked between them), and verify the accumulator.
pipeline-smoke:
	$(GO) run ./cmd/mpud -pipeline-smoke -quiet

# The PR 5 load study: 64 closed-loop clients against a self-hosted 4-pool
# daemon with a mid-run SIGTERM drain; fails if any in-flight request drops.
bench-serve:
	$(GO) run ./cmd/mpuload -c 64 -duration 10s -drain -out BENCH_pr5.json

# The PR 8 cluster study: 1/2/4-node throughput scaling, hedged-vs-unhedged
# p99 under one slow node, and a rolling node drain under open-loop load;
# fails below the acceptance floors (1.8x on 1->2 nodes, 30% p99 reduction).
bench-cluster:
	$(GO) run ./cmd/mpuload -cluster-bench -out BENCH_pr8.json

# The PR 9 QoS study: one machine under a resident heavy batch-class job with
# open-loop latency-class arrivals, preemption on vs off; fails below the
# acceptance floors (5x latency p99 improvement, <=15% batch slowdown).
bench-qos:
	$(GO) run ./cmd/mpuload -qos-bench -out BENCH_pr9.json

# The PR 10 pipeline study: a persistent FBP session streams 1000 records
# across 125 requests (zero recompilation after the cold first request),
# then keeps streaming under a concurrent latency-class burst; fails if any
# warm request recompiles or any burst request is shed.
bench-pipeline:
	$(GO) run ./cmd/mpuload -pipeline-bench -out BENCH_pr10.json

figures:
	$(GO) run ./cmd/mastodon all

clean:
	$(GO) clean ./...
