GO ?= go

.PHONY: all build test vet race check bench figures clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race detector slows the simulator ~10x, so the full-suite run needs
# more than `go test`'s default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# check is the pre-merge gate: build + vet + full suite under the race
# detector (the sweep engine is concurrent; plain `go test` won't catch
# an unsynchronized cell).
check: build vet race

bench:
	$(GO) test -bench . -benchmem -benchtime 1x

figures:
	$(GO) run ./cmd/mastodon all

clean:
	$(GO) clean ./...
