GO ?= go

.PHONY: all build test vet race race-short repolint fuzz check bench figures clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repository hygiene rules go vet does not cover (seeded randomness only,
# bit-plane mutation stays behind internal/vrf).
repolint:
	$(GO) run ./cmd/repolint

# The race detector slows the simulator ~10x, so the full-suite run needs
# more than `go test`'s default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# The concurrency-sensitive packages only (the sweep worker pool and the
# linter the machine calls from strict mode) plus the trace-engine parity
# difftest, whose replay path shares compiled traces and memoized recipe
# expansions across sweep workers, and the parallel-scheduler parity
# difftest, which fans cores out across scheduler goroutines — fast enough
# for every CI run.
race-short:
	$(GO) test -race -timeout 30m ./internal/sweep ./internal/lint
	$(GO) test -race -timeout 30m -run 'TestTraceParity|TestParallelMachine|TestParallelDeadlock' ./internal/machine

# A bounded run of the lint-soundness oracle: random programs the linter
# passes must execute without ensemble or capacity faults.
fuzz:
	$(GO) test -fuzz=FuzzLintSoundness -fuzztime=30s ./internal/isa

# check is the pre-merge gate: build + vet + full test suite + repo lint.
# Run `make race` (full suite under the race detector) before touching the
# sweep engine's concurrency.
check: build vet test repolint

# One iteration of every benchmark — a smoke run (also in CI) that keeps the
# reproduction harness executable; steady-state numbers need larger
# -benchtime.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x

figures:
	$(GO) run ./cmd/mastodon all

clean:
	$(GO) clean ./...
