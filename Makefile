GO ?= go

.PHONY: all build test vet race race-short repolint fuzz check bench figures clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Repository hygiene rules go vet does not cover (seeded randomness only,
# bit-plane mutation stays behind internal/vrf).
repolint:
	$(GO) run ./cmd/repolint

# The race detector slows the simulator ~10x, so the full-suite run needs
# more than `go test`'s default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# The concurrency-sensitive packages only (the sweep worker pool and the
# linter the machine calls from strict mode) — fast enough for every CI run.
race-short:
	$(GO) test -race -timeout 10m ./internal/sweep ./internal/lint

# A bounded run of the lint-soundness oracle: random programs the linter
# passes must execute without ensemble or capacity faults.
fuzz:
	$(GO) test -fuzz=FuzzLintSoundness -fuzztime=30s ./internal/isa

# check is the pre-merge gate: build + vet + full test suite + repo lint.
# Run `make race` (full suite under the race detector) before touching the
# sweep engine's concurrency.
check: build vet test repolint

bench:
	$(GO) test -bench . -benchmem -benchtime 1x

figures:
	$(GO) run ./cmd/mastodon all

clean:
	$(GO) clean ./...
