// Command mpud runs the MPU simulator as a long-lived execution service:
// warm machine pools per (backend, mode), a bounded admission queue with
// 503 backpressure, request batching, per-request deadlines, and an
// observability plane (/metrics, /healthz, JSON request logs).
//
// Usage:
//
//	mpud [-addr :8080] [-pools racer:mpu:2,mimdram:mpu:1] [-queue 64]
//	     [-window 2ms] [-deadline 30s] [-max-elements 1048576]
//	     [-notrace] [-nojit] [-j N] [-node-id node0] [-quiet]
//	     [-nopreempt] [-max-parked 8]
//
// QoS: the X-QoS request header selects a class — "latency" (strict queue
// priority; preempts running batch jobs at ensemble boundaries) or "batch"
// (the default). -nopreempt keeps the priority queues but never interrupts a
// running job; -max-parked bounds each pool's parking lot of preempted-job
// snapshots.
//
// Endpoints:
//
//	POST   /v1/execute        run a catalog workload or an assembled binary
//	GET    /v1/workloads      list the kernel catalog
//	POST   /v1/pipelines      compile an FBP graph into a persistent session
//	POST   /v1/pipelines/{id} stream records through a session
//	GET    /v1/pipelines[/{id}] list sessions / session status
//	DELETE /v1/pipelines/{id} close a session
//	GET    /healthz           liveness + pool inventory (503 while draining)
//	GET    /metrics           Prometheus text exposition
//
// Pipeline sessions compile once and stream records across requests; the
// session's machine state parks as a snapshot between requests, so sessions
// never pin machines. -max-sessions bounds the table.
//
// On SIGTERM/SIGINT the daemon drains: admission stops (503), in-flight
// requests run to completion, then the pools shut down.
//
// -smoke starts the daemon on a random loopback port, exercises /healthz,
// one /v1/execute, and /metrics against itself, drains, and exits — the CI
// end-to-end check. -pipeline-smoke does the same for the session plane:
// create, stream across two requests (pinning zero recompilation on the
// second), reject a deadlocking graph with 422 findings, close, drain.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mpu/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	pools := flag.String("pools", "racer:mpu:2", "warm pools: backend:mode[:size],... (modes: mpu, baseline)")
	queue := flag.Int("queue", 64, "admission queue depth per pool, in batches")
	window := flag.Duration("window", 2*time.Millisecond, "batching window (negative disables coalescing waits)")
	deadline := flag.Duration("deadline", 30*time.Second, "default per-request deadline")
	maxElements := flag.Int("max-elements", 1<<20, "per-request element cap for workload runs")
	notrace := flag.Bool("notrace", false, "disable the ensemble trace engine in pool machines")
	nojit := flag.Bool("nojit", false, "disable trace JIT compilation in pool machines (replay step-interpreted)")
	jobs := flag.Int("j", 0, "machine scheduler workers per pool machine (0 = one per CPU)")
	nodeID := flag.String("node-id", "", "cluster node label on /metrics gauges and request logs (empty = standalone)")
	quiet := flag.Bool("quiet", false, "suppress JSON request logs")
	nopreempt := flag.Bool("nopreempt", false, "disable ensemble-boundary preemption (latency keeps queue priority only)")
	maxParked := flag.Int("max-parked", 8, "parking-lot bound per pool for preempted-job snapshots")
	maxSessions := flag.Int("max-sessions", 8, "live pipeline session bound (/v1/pipelines)")
	smoke := flag.Bool("smoke", false, "self-test: serve on a random port, run one request, drain, exit")
	pipelineSmoke := flag.Bool("pipeline-smoke", false, "self-test the session plane: create, stream, 422 check, close, drain, exit")
	flag.Parse()

	if err := run(*addr, *pools, *queue, *window, *deadline, *maxElements, *notrace, *nojit, *jobs, *nodeID, *quiet, *nopreempt, *maxParked, *maxSessions, *smoke, *pipelineSmoke); err != nil {
		fmt.Fprintf(os.Stderr, "mpud: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, pools string, queue int, window, deadline time.Duration, maxElements int, notrace, nojit bool, jobs int, nodeID string, quiet, nopreempt bool, maxParked, maxSessions int, smoke, pipelineSmoke bool) error {
	specs, err := serve.ParsePoolSpecs(pools)
	if err != nil {
		return err
	}
	var logs io.Writer = os.Stderr
	if quiet {
		logs = nil
	}
	srv, err := serve.New(serve.Config{
		Pools:           specs,
		QueueDepth:      queue,
		BatchWindow:     window,
		MaxElements:     maxElements,
		DefaultDeadline: deadline,
		NoTrace:         notrace,
		NoJIT:           nojit,
		MachineWorkers:  jobs,
		NodeID:          nodeID,
		NoPreempt:       nopreempt,
		MaxParked:       maxParked,
		MaxSessions:     maxSessions,
		Logs:            logs,
	})
	if err != nil {
		return err
	}

	if smoke || pipelineSmoke {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Explicit timeouts on every edge: a slow or stalled client must not be
	// able to pin a connection (repolint rule 4 enforces this shape).
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * deadline,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("mpud: listening on %s (pools %s)\n", ln.Addr(), pools)

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	if smoke || pipelineSmoke {
		test, name := smokeTest, "smoke"
		if pipelineSmoke {
			test, name = pipelineSmokeTest, "pipeline-smoke"
		}
		go func() {
			if err := test("http://" + ln.Addr().String()); err != nil {
				fmt.Fprintf(os.Stderr, "mpud: %s: %v\n", name, err)
				os.Exit(1)
			}
			// Self-deliver the drain signal so the smoke run exercises the
			// same shutdown path as production.
			p, _ := os.FindProcess(os.Getpid())
			p.Signal(syscall.SIGTERM)
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("mpud: %s: draining\n", s)
	}

	// Drain sequence: stop admitting, let the HTTP layer finish in-flight
	// handlers (every queued batch has one waiting), then stop the pools.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 2*deadline)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close()
	fmt.Println("mpud: drained")
	return nil
}

// smokeTest is the end-to-end liveness exercise run by -smoke (and CI):
// healthz, one kernel execution with plausibility checks, and metrics.
func smokeTest(base string) error {
	client := &http.Client{Timeout: 30 * time.Second}

	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{
		"workload": "gcd", "backend": "racer", "elements": 256, "seed": 7, "check": true,
	})
	resp, err = client.Post(base+"/v1/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("execute: status %d: %s", resp.StatusCode, out)
	}
	var r struct {
		CheckedLanes int             `json:"checked_lanes"`
		Stats        json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal(out, &r); err != nil {
		return fmt.Errorf("execute: bad body %s: %w", out, err)
	}
	if r.CheckedLanes <= 0 || len(r.Stats) == 0 {
		return fmt.Errorf("execute: implausible result %s", out)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte(`mpud_requests_total{code="200"} 1`)) {
		return fmt.Errorf("metrics did not count the request:\n%s", metrics)
	}
	if !bytes.Contains(metrics, []byte("mpud_preemptions_total")) {
		return fmt.Errorf("metrics missing the QoS preemption plane:\n%s", metrics)
	}
	fmt.Println("mpud: smoke ok")
	return nil
}

// pipelineSmokeSource is the resident-accumulator stream the pipeline smoke
// drives: Split forwards each record's r0 into a Reduce whose r48 total
// persists across records and across the park/restore boundary between
// requests.
const pipelineSmokeSource = "src(Split) OUT -> IN total(Reduce)\n'1' -> REGS src\n'add' -> OP total\n"

// pipelineSmokeTest is the session plane's end-to-end exercise run by
// -pipeline-smoke (and CI): compile once, stream records across two
// requests (the second must replay warm traces with zero recompilation),
// verify the 422 admission path on a deadlocking graph, and close.
func pipelineSmokeTest(base string) error {
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, req, resp any) (int, []byte, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, nil, err
		}
		r, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		out, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if resp != nil && r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(out, resp); err != nil {
				return r.StatusCode, out, err
			}
		}
		return r.StatusCode, out, nil
	}

	var created struct {
		ID    string `json:"id"`
		MPUs  int    `json:"mpus"`
		Lanes int    `json:"lanes"`
	}
	code, out, err := post("/v1/pipelines", map[string]any{
		"source": pipelineSmokeSource, "backend": "racer",
	}, &created)
	if err != nil {
		return err
	}
	if code != http.StatusOK || created.ID == "" || created.MPUs != 2 {
		return fmt.Errorf("create: status %d: %s", code, out)
	}

	vals := make([]uint64, created.Lanes)
	for i := range vals {
		vals[i] = 2
	}
	record := map[string]any{
		"sets":  []map[string]any{{"node": "src", "reg": 0, "values": vals}},
		"dumps": []map[string]any{{"node": "total", "reg": 48}},
	}
	type advance struct {
		Records []struct {
			Dumps []struct {
				Values []uint64 `json:"values"`
			} `json:"dumps"`
		} `json:"records"`
		Summary struct {
			Records     int    `json:"records"`
			TraceMisses uint64 `json:"trace_misses"`
			JITCompiles uint64 `json:"jit_compiles"`
			TraceHits   uint64 `json:"trace_hits"`
		} `json:"summary"`
	}
	var a1, a2 advance
	code, out, err = post("/v1/pipelines/"+created.ID, map[string]any{
		"records": []any{record, record},
	}, &a1)
	if err != nil {
		return err
	}
	if code != http.StatusOK || a1.Summary.Records != 2 {
		return fmt.Errorf("advance 1: status %d: %s", code, out)
	}
	code, out, err = post("/v1/pipelines/"+created.ID, map[string]any{
		"records": []any{record},
	}, &a2)
	if err != nil {
		return err
	}
	if code != http.StatusOK || a2.Summary.Records != 1 {
		return fmt.Errorf("advance 2: status %d: %s", code, out)
	}
	if a2.Summary.TraceMisses != 0 || a2.Summary.JITCompiles != 0 {
		return fmt.Errorf("advance 2 recompiled (misses %d, compiles %d) — the session did not stay warm across the park",
			a2.Summary.TraceMisses, a2.Summary.JITCompiles)
	}
	if got := a2.Records[0].Dumps[0].Values[0]; got != 6 {
		return fmt.Errorf("accumulator = %d after 3 records of 2s, want 6", got)
	}

	// Admission: a mis-phased ring must be refused statically with findings.
	code, out, err = post("/v1/pipelines", map[string]any{
		"source":  "a(EDStep) OUT -> IN b(EDStep)\nb OUT -> IN a\n'1' -> STEPS a\n'2' -> STEPS b",
		"backend": "racer",
	}, nil)
	if err != nil {
		return err
	}
	var eb struct {
		Findings []json.RawMessage `json:"findings"`
	}
	if code != http.StatusUnprocessableEntity || json.Unmarshal(out, &eb) != nil || len(eb.Findings) == 0 {
		return fmt.Errorf("deadlocking graph: status %d: %s", code, out)
	}

	req, err := http.NewRequest(http.MethodDelete, base+"/v1/pipelines/"+created.ID, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("close: status %d", resp.StatusCode)
	}

	resp, err = client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte("mpud_session_records_total 3")) ||
		!bytes.Contains(metrics, []byte("mpud_session_parks_total 2")) {
		return fmt.Errorf("metrics did not account the session:\n%s", metrics)
	}
	fmt.Println("mpud: pipeline-smoke ok")
	return nil
}
