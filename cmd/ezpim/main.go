// Command ezpim is the advanced assembler CLI (§V-C): it compiles ezpim
// source files into MPU assembly or binary ISU images.
//
// Usage:
//
//	ezpim [-bin] [-O] [-lint] [-json] [-o out] file.ez
//
// Without -o the MPU assembly is printed to stdout along with the Table IV
// style code-size accounting on stderr. The compiled (and, with -O,
// optimized) program is always verified by the static linter — Error
// findings abort the compile; -lint additionally prints the full report,
// warnings and observations included. -lint -json switches to lint-only
// mode: instead of compiled output, the findings are printed to stdout as
// the stable JSON envelope {"ok": bool, "findings": [...]} for CI
// consumption, and the process exits 1 when the report carries errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mpu"
)

func main() {
	bin := flag.Bool("bin", false, "emit the binary ISU image instead of assembly text")
	opt := flag.Bool("O", false, "run the peephole optimizer on the output")
	lintFlag := flag.Bool("lint", false, "print the full lint report (warnings and observations included)")
	jsonOut := flag.Bool("json", false, "with -lint: emit findings as stable JSON to stdout and skip code output")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ezpim [-bin] [-O] [-lint] [-json] [-o out] file.ez\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ezpim: %v\n", err)
		os.Exit(1)
	}
	res, err := mpu.CompileEzpim(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ezpim: %v\n", err)
		os.Exit(1)
	}
	removed := 0
	if *opt {
		res.Program, removed = mpu.Optimize(res.Program)
		res.AsmLines = len(res.Program)
	}
	// Verify the final program — with -O this re-checks the optimizer's
	// output, not just the builder's.
	report := mpu.Lint(res.Program, mpu.LintOptions{})
	if *lintFlag && *jsonOut {
		findings := report.Findings
		if findings == nil {
			findings = []mpu.LintFinding{}
		}
		env := struct {
			OK       bool              `json:"ok"`
			Findings []mpu.LintFinding `json:"findings"`
		}{report.Ok(), findings}
		b, err := json.Marshal(&env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ezpim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(b))
		if !report.Ok() {
			os.Exit(1)
		}
		return
	}
	if *lintFlag {
		fmt.Fprint(os.Stderr, report)
	}
	if err := report.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "ezpim: %v\n", err)
		os.Exit(1)
	}
	var data []byte
	if *bin {
		data = mpu.EncodeProgram(res.Program)
	} else {
		data = []byte(mpu.Disassemble(res.Program))
	}
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "ezpim: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ezpim: %d source lines -> %d MPU instructions (%.1fx expansion)\n",
		res.SourceLines, res.AsmLines, float64(res.AsmLines)/float64(res.SourceLines))
	if removed > 0 {
		fmt.Fprintf(os.Stderr, "ezpim: peephole pass removed %d instructions\n", removed)
	}
}
