// Command mastodon regenerates the paper's tables and figures (the Go
// counterpart of the MASTODON simulation testbed [12]).
//
// Usage:
//
//	mastodon [-scale N] [-seed S] [-j N] [-mj N] [-notrace] [-nojit] <experiment>...
//
// Experiments: preflight fig1 table1 fig5 table3 fig11 fig12 fig13 table4
// fig14 fig15 scale ablations pipelines all. preflight statically verifies
// every kernel and application with the machine-level linter (commlint)
// before any cycles are simulated; pipelines compiles every shipped .fbp
// dataflow graph (-fbp names the directory) for every back end, checks the
// verifier findings, and runs each placement once offline.
// Scale divides the evaluation working-set sizes (1 =
// paper scale; larger is faster). -j fans independent sweep cells out across
// N workers (0 = one per CPU; 1 = sequential); -mj sets the scheduler
// workers running each cell's simulated MPUs concurrently between
// communication points (0 = share the CPU budget with -j; 1 = sequential).
// Output is byte-identical at any worker count. -notrace disables the
// ensemble trace engine, forcing every scheduling round through the
// interpreter; -nojit keeps the engine but replays traces step-interpreted
// instead of through JIT-compiled closure chains — both byte-identical,
// just slower (the parity is test-pinned).
package main

import (
	"flag"
	"fmt"
	"os"

	"mpu/internal/backends"
	"mpu/internal/exp"
	"mpu/internal/tune"
	"mpu/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 1, "divide working-set sizes by N (1 = full evaluation scale)")
	seed := flag.Int64("seed", 1, "input generator seed")
	jobs := flag.Int("j", 0, "sweep worker count (0 = one per CPU, 1 = sequential)")
	mjobs := flag.Int("mj", 0, "machine scheduler workers per sweep cell (0 = share the CPU budget with -j, 1 = sequential)")
	csvDir := flag.String("csv", "", "also export machine-readable CSVs into this directory")
	noTrace := flag.Bool("notrace", false, "disable the ensemble trace engine (interpret every scheduling round)")
	noJIT := flag.Bool("nojit", false, "disable trace JIT compilation (replay traces step-interpreted)")
	fbpDir := flag.String("fbp", "examples/pipelines", "directory of .fbp graphs for the pipelines experiment")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mastodon [-scale N] [-seed S] [-j N] [-mj N] [-notrace] [-nojit] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: preflight fig1 table1 fig5 table3 fig11 fig12 fig13 table4 fig14 fig15 scale ablations autotune pipelines all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opts := exp.Options{Scale: *scale, Seed: *seed, Workers: *jobs, MachineWorkers: *mjobs, NoTrace: *noTrace, NoJIT: *noJIT}
	if *csvDir != "" {
		if err := exp.ExportAll(*csvDir, opts); err != nil {
			fmt.Fprintf(os.Stderr, "mastodon: csv export: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mastodon: CSVs written to %s\n", *csvDir)
	}
	for _, name := range flag.Args() {
		if err := run(name, opts, *fbpDir); err != nil {
			fmt.Fprintf(os.Stderr, "mastodon: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

func run(name string, opts exp.Options, fbpDir string) error {
	switch name {
	case "all":
		for _, n := range []string{"preflight", "pipelines", "fig1", "table1", "fig5", "table3", "fig11",
			"fig12", "fig13", "table4", "fig14", "fig15", "scale", "ablations", "autotune"} {
			if err := run(n, opts, fbpDir); err != nil {
				return err
			}
		}
		return nil
	case "preflight":
		r, err := exp.Preflight(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		if !r.Clean() {
			return fmt.Errorf("static verification found problems (see table above)")
		}
	case "pipelines":
		r, err := exp.Pipelines(opts, fbpDir)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		if !r.Clean() {
			return fmt.Errorf("pipeline verification found problems (see table above)")
		}
	case "fig1":
		r, err := exp.Fig1(opts)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "table1":
		fmt.Println(exp.Table1())
	case "fig5":
		fmt.Println(exp.RenderFig5(exp.Fig5(opts)))
	case "table3":
		fmt.Println(exp.Table3())
	case "fig11":
		fmt.Println(exp.Fig11())
	case "fig12":
		rs, err := exp.Fig12(opts)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Println(r.Render())
		}
	case "fig13":
		rs, err := exp.Fig13(opts)
		if err != nil {
			return err
		}
		for _, r := range rs {
			fmt.Println(r.Render())
		}
	case "table4":
		rows, err := exp.Table4(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderTable4(rows))
	case "fig14":
		rows, err := exp.Fig14(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig14(rows))
	case "fig15":
		rows, err := exp.Fig15(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig15(rows))
	case "scale":
		rows, err := exp.Scale(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderScale(rows))
	case "autotune":
		res, err := tune.ActivationLimit(tune.Config{
			Spec:   backends.RACER(),
			Kernel: workloads.ByName("vecadd"),
			Seed:   opts.Seed,
		})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	case "ablations":
		r1, err := exp.AblationRecipeTable(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblationRecipe(r1))
		r2, err := exp.AblationThermal(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblationThermal(r2))
		r3, err := exp.AblationDivergence(opts)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderAblationDivergence(r3))
	default:
		return fmt.Errorf("unknown experiment (want preflight, pipelines, fig1, table1, fig5, table3, fig11, fig12, fig13, table4, fig14, fig15, scale, ablations, autotune, all)")
	}
	return nil
}
