// Command mpurun executes an MPU assembly (.masm), ezpim (.ez), or FBP
// pipeline (.fbp) program on a simulated chip and reports the run
// statistics.
//
// Usage:
//
//	mpurun [-backend racer|mimdram|dcache] [-mode mpu|baseline] [-mpus N] [-j N]
//	       [-nolint] [-notrace] [-nojit] [-set rfh.vrf.reg=v1,v2,...]... [-dump rfh.vrf.reg]... file
//
// -set preloads a vector register on MPU 0 before the run; -dump prints one
// after it. The same binary is loaded into every MPU (SPMD). -j runs the
// simulated MPUs on N scheduler goroutines between communication points
// (0 = one per CPU, 1 = sequential); statistics are identical either way.
//
// A .fbp file compiles as a dataflow pipeline instead: each graph node
// places on its own MPU (the compiler reports the placement; -mpus is
// ignored) and the per-node ensemble programs are machine-verified by
// construction. For pipelines, -set and -dump take an optional node prefix
// ("node:rfh.vrf.reg"), addressing that node's MPU; without a prefix they
// address MPU 0.
// Before loading, the program is preflighted by the machine-level linter
// against the selected back end and MPU count: per-core structural checks
// plus the cross-MPU communication checks (rendezvous matching, route
// legality, deadlock-freedom — see docs/LINT.md). Error findings abort the
// run (and warnings are printed); -nolint skips the preflight to reproduce
// raw machine faults. -lint stops after the preflight and prints the full
// report; with -json the findings are emitted as stable JSON for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mpu"
	"mpu/internal/exp"
)

type repeatFlag []string

func (r *repeatFlag) String() string     { return strings.Join(*r, ";") }
func (r *repeatFlag) Set(s string) error { *r = append(*r, s); return nil }

func main() {
	backend := flag.String("backend", "racer", "back end: racer, mimdram, dcache")
	mode := flag.String("mode", "mpu", "execution mode: mpu or baseline")
	mpus := flag.Int("mpus", 1, "number of MPUs to instantiate")
	stats := flag.Bool("stats", false, "print a static analysis of the binary before running")
	lintOnly := flag.Bool("lint", false, "preflight only: print the machine-level lint report and exit without running")
	nolint := flag.Bool("nolint", false, "skip the static lint preflight")
	notrace := flag.Bool("notrace", false, "disable the ensemble trace engine (interpret every scheduling round)")
	nojit := flag.Bool("nojit", false, "disable trace JIT compilation (replay traces step-interpreted)")
	jobs := flag.Int("j", 0, "machine scheduler workers running MPUs concurrently (0 = one per CPU, 1 = sequential)")
	jsonOut := flag.Bool("json", false, "print the run statistics as stable JSON instead of text")
	csvDir := flag.String("csv", "", "also write the run statistics as CSV into this directory (created if missing)")
	var sets, dumps repeatFlag
	flag.Var(&sets, "set", "preload a register: rfh.vrf.reg=v1,v2,... (repeatable)")
	flag.Var(&dumps, "dump", "print a register after the run: rfh.vrf.reg (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mpurun [flags] file.{masm,ez}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	opts := runOpts{
		backend: *backend, mode: *mode, mpus: *mpus, sets: sets, dumps: dumps,
		stats: *stats, lintOnly: *lintOnly, nolint: *nolint, notrace: *notrace,
		nojit: *nojit, jobs: *jobs, jsonOut: *jsonOut, csvDir: *csvDir,
	}
	if err := run(flag.Arg(0), opts); err != nil {
		fmt.Fprintf(os.Stderr, "mpurun: %v\n", err)
		os.Exit(1)
	}
}

// runOpts mirrors the command-line flags.
type runOpts struct {
	backend, mode  string
	mpus           int
	sets, dumps    []string
	stats          bool
	lintOnly       bool
	nolint         bool
	notrace, nojit bool
	jobs           int
	jsonOut        bool
	csvDir         string
}

func run(path string, o runOpts) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".fbp") {
		return runPipeline(path, string(src), o)
	}
	var prog mpu.Program
	var lines []int
	if strings.HasSuffix(path, ".ez") {
		res, err := mpu.CompileEzpim(string(src))
		if err != nil {
			return err
		}
		prog = res.Program
	} else {
		if prog, lines, err = mpu.AssembleWithLines(string(src)); err != nil {
			return err
		}
	}
	if o.stats {
		fmt.Print(mpu.Analyze(prog))
	}
	spec, err := mpu.BackendByName(o.backend)
	if err != nil {
		return err
	}
	if !o.nolint || o.lintOnly {
		// Machine-level preflight: per-core structural lint plus the commlint
		// composition over the SPMD set the machine will actually load.
		report := mpu.LintSPMD(prog, o.mpus, mpu.MachineLintOptions{Spec: spec, Lines: [][]int{lines}})
		if o.lintOnly {
			return emitLintReport(report, o.jsonOut)
		}
		// Warnings are surfaced; Info observations (e.g. reads of -set
		// preloaded registers) stay quiet.
		for _, f := range report.Findings {
			if f.Severity == mpu.LintWarning {
				fmt.Fprintf(os.Stderr, "mpurun: %s\n", f)
			}
		}
		if err := report.Err(); err != nil {
			return fmt.Errorf("preflight failed (use -nolint to run anyway): %w", err)
		}
	}
	var mode mpu.Mode
	switch strings.ToLower(o.mode) {
	case "mpu":
		mode = mpu.ModeMPU
	case "baseline":
		mode = mpu.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	m, err := mpu.NewMachine(mpu.MachineConfig{Spec: spec, Mode: mode, NumMPUs: o.mpus, NoTrace: o.notrace, NoJIT: o.nojit, Workers: o.jobs})
	if err != nil {
		return err
	}
	if err := m.LoadAll(prog); err != nil {
		return err
	}
	for _, s := range o.sets {
		addr, reg, vals, err := parseSet(s)
		if err != nil {
			return err
		}
		if err := m.WriteVector(0, addr, reg, vals); err != nil {
			return err
		}
	}
	st, err := m.Run()
	if err != nil {
		return err
	}
	resolve := func(s string) (int, mpu.VRFAddr, int, error) {
		addr, reg, err := parseAddr(s)
		return 0, addr, reg, err
	}
	return emitResults(path, spec, mode, o.mpus, st, m, o, resolve)
}

// emitResults prints the run's statistics (text or stable JSON), optionally
// writes the CSV row, and dumps the requested registers. resolve maps one
// -dump operand to its MPU and register address (pipelines accept a node
// prefix; flat programs always read MPU 0).
func emitResults(path string, spec *mpu.Backend, mode mpu.Mode, mpus int, st *mpu.Stats, m *mpu.Machine, o runOpts, resolve func(string) (int, mpu.VRFAddr, int, error)) error {
	if o.jsonOut {
		// The stats object uses the stable machine.Stats encoding shared
		// with mpud responses.
		env := struct {
			Backend string     `json:"backend"`
			Mode    string     `json:"mode"`
			MPUs    int        `json:"mpus"`
			Seconds float64    `json:"seconds"`
			Joules  float64    `json:"joules"`
			Stats   *mpu.Stats `json:"stats"`
		}{spec.Name, mode.String(), mpus, st.TimeSeconds(spec.ClockGHz), st.TotalEnergyPJ() * 1e-12, st}
		b, err := json.Marshal(&env)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		fmt.Printf("backend=%s mode=%s mpus=%d\n", spec.Name, mode, mpus)
		fmt.Printf("cycles=%d time=%.3gs instructions=%d micro-ops=%d rounds=%d\n",
			st.Cycles, st.TimeSeconds(spec.ClockGHz), st.Instructions, st.MicroOps, st.Rounds)
		if st.TraceHits+st.TraceMisses+st.TraceFallbacks > 0 {
			fmt.Printf("trace: hits=%d misses=%d fallbacks=%d\n",
				st.TraceHits, st.TraceMisses, st.TraceFallbacks)
		}
		if st.JITCompiles+st.JITReplays > 0 {
			fmt.Printf("jit: compiles=%d replays=%d\n", st.JITCompiles, st.JITReplays)
		}
		fmt.Printf("offloads=%d energy=%.3gJ (datapath %.3g, frontend %.3g, noc %.3g, host %.3g)\n",
			st.Offloads, st.TotalEnergyPJ()*1e-12,
			st.DatapathEnergyPJ*1e-12, (st.FrontendStaticPJ+st.FrontendDynamicPJ)*1e-12,
			st.NoCEnergyPJ*1e-12, st.HostEnergyPJ*1e-12)
	}
	if o.csvDir != "" {
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		rows := [][]string{
			{"backend", "mode", "mpus", "cycles", "seconds", "instructions", "micro_ops",
				"rounds", "trace_hits", "trace_misses", "trace_fallbacks",
				"jit_compiles", "jit_replays", "offloads", "joules"},
			{spec.Name, mode.String(), strconv.Itoa(mpus),
				strconv.FormatInt(st.Cycles, 10),
				strconv.FormatFloat(st.TimeSeconds(spec.ClockGHz), 'g', -1, 64),
				strconv.FormatUint(st.Instructions, 10),
				strconv.FormatUint(st.MicroOps, 10),
				strconv.FormatUint(st.Rounds, 10),
				strconv.FormatUint(st.TraceHits, 10),
				strconv.FormatUint(st.TraceMisses, 10),
				strconv.FormatUint(st.TraceFallbacks, 10),
				strconv.FormatUint(st.JITCompiles, 10),
				strconv.FormatUint(st.JITReplays, 10),
				strconv.FormatUint(st.Offloads, 10),
				strconv.FormatFloat(st.TotalEnergyPJ()*1e-12, 'g', -1, 64)},
		}
		// exp.WriteCSV creates csvDir if missing.
		if err := exp.WriteCSV(o.csvDir, name, rows); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mpurun: CSV written to %s\n", filepath.Join(o.csvDir, name+".csv"))
	}
	for _, d := range o.dumps {
		id, addr, reg, err := resolve(d)
		if err != nil {
			return err
		}
		vals, err := m.ReadVector(id, addr, reg)
		if err != nil {
			return err
		}
		n := len(vals)
		if n > 16 {
			n = 16
		}
		fmt.Printf("%s = %v", d, vals[:n])
		if n < len(vals) {
			fmt.Printf(" ... (%d lanes)", len(vals))
		}
		fmt.Println()
	}
	return nil
}

// runPipeline compiles a .fbp graph and runs it once: every node on its own
// MPU, edges as verified SEND/RECV rendezvous. The placement is printed
// before the run; -set/-dump accept a "node:" prefix to address a node's
// MPU directly.
func runPipeline(path, src string, o runOpts) error {
	spec, err := mpu.BackendByName(o.backend)
	if err != nil {
		return err
	}
	c, err := mpu.CompileFBP(src, mpu.FBPOptions{Spec: spec})
	if err != nil {
		return err
	}
	if o.lintOnly {
		return emitLintReport(c.Report, o.jsonOut)
	}
	var mode mpu.Mode
	switch strings.ToLower(o.mode) {
	case "mpu":
		mode = mpu.ModeMPU
	case "baseline":
		mode = mpu.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", o.mode)
	}
	nodeMPU := make(map[string]int, len(c.Nodes))
	if !o.jsonOut {
		fmt.Printf("pipeline: %d nodes on %d MPUs, %d mesh hops\n", len(c.Nodes), c.MPUs, c.Hops)
	}
	for _, n := range c.Nodes {
		nodeMPU[n.Name] = n.MPU
		if !o.jsonOut {
			fmt.Printf("  mpu%-3d %s(%s)\n", n.MPU, n.Name, n.Component)
		}
	}
	m, err := mpu.NewMachine(mpu.MachineConfig{
		Spec: spec, Mode: mode, NumMPUs: c.MPUs, NoTrace: o.notrace, NoJIT: o.nojit, Workers: o.jobs,
	})
	if err != nil {
		return err
	}
	for id, p := range c.Programs {
		if err := m.LoadProgram(id, p); err != nil {
			return err
		}
	}
	resolve := func(s string) (int, mpu.VRFAddr, int, error) {
		rest := s
		id := 0
		if i := strings.IndexByte(s, ':'); i >= 0 {
			node, ok := nodeMPU[s[:i]]
			if !ok {
				return 0, mpu.VRFAddr{}, 0, fmt.Errorf("%q names no pipeline node", s[:i])
			}
			id, rest = node, s[i+1:]
		}
		addr, reg, err := parseAddr(rest)
		return id, addr, reg, err
	}
	for _, s := range o.sets {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("bad -set %q (want [node:]rfh.vrf.reg=v1,v2,...)", s)
		}
		id, addr, reg, err := resolve(s[:eq])
		if err != nil {
			return err
		}
		vals, err := parseValues(s[eq+1:])
		if err != nil {
			return fmt.Errorf("bad -set %q: %w", s, err)
		}
		if err := m.WriteVector(id, addr, reg, vals); err != nil {
			return err
		}
	}
	st, err := m.Run()
	if err != nil {
		return err
	}
	return emitResults(path, spec, mode, c.MPUs, st, m, o, resolve)
}

// emitLintReport prints the -lint mode result: the full text report, or —
// with -json — the stable findings envelope {"ok": bool, "findings": [...]}
// CI pipelines consume. The returned error is non-nil when the report
// carries Error findings, so the process exits 1 on a rejected program.
func emitLintReport(report *mpu.LintReport, jsonOut bool) error {
	if jsonOut {
		findings := report.Findings
		if findings == nil {
			findings = []mpu.LintFinding{}
		}
		env := struct {
			OK       bool              `json:"ok"`
			Findings []mpu.LintFinding `json:"findings"`
		}{report.Ok(), findings}
		b, err := json.Marshal(&env)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	} else {
		fmt.Print(report)
	}
	if !report.Ok() {
		return fmt.Errorf("lint: %d error finding(s)", len(report.Errs()))
	}
	return nil
}

func parseAddr(s string) (mpu.VRFAddr, int, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 3 {
		return mpu.VRFAddr{}, 0, fmt.Errorf("bad address %q (want rfh.vrf.reg)", s)
	}
	nums := make([]int, 3)
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil {
			return mpu.VRFAddr{}, 0, fmt.Errorf("bad address %q: %v", s, err)
		}
		nums[i] = n
	}
	return mpu.VRFAddr{RFH: uint8(nums[0]), VRF: uint8(nums[1])}, nums[2], nil
}

func parseSet(s string) (mpu.VRFAddr, int, []uint64, error) {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return mpu.VRFAddr{}, 0, nil, fmt.Errorf("bad -set %q (want rfh.vrf.reg=v1,v2,...)", s)
	}
	addr, reg, err := parseAddr(s[:eq])
	if err != nil {
		return mpu.VRFAddr{}, 0, nil, err
	}
	vals, err := parseValues(s[eq+1:])
	if err != nil {
		return mpu.VRFAddr{}, 0, nil, fmt.Errorf("bad value in %q: %v", s, err)
	}
	return addr, reg, vals, nil
}

func parseValues(s string) ([]uint64, error) {
	var vals []uint64
	for _, v := range strings.Split(s, ",") {
		x, err := strconv.ParseUint(strings.TrimSpace(v), 0, 64)
		if err != nil {
			return nil, err
		}
		vals = append(vals, x)
	}
	return vals, nil
}
