package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseAddr(t *testing.T) {
	addr, reg, err := parseAddr("1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if addr.RFH != 1 || addr.VRF != 2 || reg != 3 {
		t.Fatalf("parsed %v r%d", addr, reg)
	}
	for _, bad := range []string{"", "1.2", "1.2.3.4", "a.b.c", "1..3"} {
		if _, _, err := parseAddr(bad); err == nil {
			t.Errorf("parseAddr(%q) succeeded", bad)
		}
	}
}

func TestParseSet(t *testing.T) {
	addr, reg, vals, err := parseSet("0.1.2=10,0x20,3")
	if err != nil {
		t.Fatal(err)
	}
	if addr.RFH != 0 || addr.VRF != 1 || reg != 2 {
		t.Fatalf("addr %v r%d", addr, reg)
	}
	want := []uint64{10, 0x20, 3}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	for _, bad := range []string{"0.1.2", "0.1.2=", "0.1.2=x", "0.1=1"} {
		if _, _, _, err := parseSet(bad); err == nil {
			t.Errorf("parseSet(%q) succeeded", bad)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("/nonexistent.masm", "racer", "mpu", 1, nil, nil, false, false, false, false, 1, false, ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunLintPreflight(t *testing.T) {
	// A program the machine would fault on: the preflight must catch it.
	masm := t.TempDir() + "/bad.masm"
	if err := writeFile(masm, "COMPUTE rfh0 vrf0\nADD r0 r1 r2\n"); err != nil {
		t.Fatal(err)
	}
	err := run(masm, "racer", "mpu", 1, nil, nil, false, false, false, false, 1, false, "")
	if err == nil {
		t.Fatal("unbalanced ensemble passed the preflight")
	}
	// -nolint must hand the same program to the machine, which faults too —
	// but through the runtime guard, not the linter.
	if err := run(masm, "racer", "mpu", 1, nil, nil, false, true, false, false, 1, false, ""); err == nil {
		t.Fatal("unbalanced ensemble ran cleanly with -nolint")
	}
}

func TestRunCSVCreatesDir(t *testing.T) {
	masm := t.TempDir() + "/add.masm"
	if err := writeFile(masm, "COMPUTE rfh0 vrf0\nADD r0 r1 r2\nCOMPUTE_DONE\n"); err != nil {
		t.Fatal(err)
	}
	// The target directory (and its parent) do not exist yet.
	csvDir := filepath.Join(t.TempDir(), "missing", "nested")
	if err := run(masm, "racer", "mpu", 1, nil, nil, false, false, false, false, 1, false, csvDir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "add.csv")); err != nil {
		t.Fatalf("CSV not written into created directory: %v", err)
	}
}
