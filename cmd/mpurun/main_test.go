package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestParseAddr(t *testing.T) {
	addr, reg, err := parseAddr("1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if addr.RFH != 1 || addr.VRF != 2 || reg != 3 {
		t.Fatalf("parsed %v r%d", addr, reg)
	}
	for _, bad := range []string{"", "1.2", "1.2.3.4", "a.b.c", "1..3"} {
		if _, _, err := parseAddr(bad); err == nil {
			t.Errorf("parseAddr(%q) succeeded", bad)
		}
	}
}

func TestParseSet(t *testing.T) {
	addr, reg, vals, err := parseSet("0.1.2=10,0x20,3")
	if err != nil {
		t.Fatal(err)
	}
	if addr.RFH != 0 || addr.VRF != 1 || reg != 2 {
		t.Fatalf("addr %v r%d", addr, reg)
	}
	want := []uint64{10, 0x20, 3}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	for _, bad := range []string{"0.1.2", "0.1.2=", "0.1.2=x", "0.1=1"} {
		if _, _, _, err := parseSet(bad); err == nil {
			t.Errorf("parseSet(%q) succeeded", bad)
		}
	}
}

// baseOpts is the flag default set the tests perturb.
func baseOpts() runOpts {
	return runOpts{backend: "racer", mode: "mpu", mpus: 1, jobs: 1}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("/nonexistent.masm", baseOpts()); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunLintPreflight(t *testing.T) {
	// A program the machine would fault on: the preflight must catch it.
	masm := t.TempDir() + "/bad.masm"
	if err := writeFile(masm, "COMPUTE rfh0 vrf0\nADD r0 r1 r2\n"); err != nil {
		t.Fatal(err)
	}
	if err := run(masm, baseOpts()); err == nil {
		t.Fatal("unbalanced ensemble passed the preflight")
	}
	// -nolint must hand the same program to the machine, which faults too —
	// but through the runtime guard, not the linter.
	nolint := baseOpts()
	nolint.nolint = true
	if err := run(masm, nolint); err == nil {
		t.Fatal("unbalanced ensemble ran cleanly with -nolint")
	}
}

func TestRunCommPreflight(t *testing.T) {
	// An SPMD binary where every core receives from mpu0 and no one sends:
	// on 2 MPUs core 0 waits on itself and core 1 waits on a core that never
	// sends — statically broken communication. The machine-level preflight
	// must reject it before the machine is even built.
	masm := t.TempDir() + "/orphan.masm"
	if err := writeFile(masm, "RECV mpu0\n"); err != nil {
		t.Fatal(err)
	}
	o := baseOpts()
	o.mpus = 2
	err := run(masm, o)
	if err == nil {
		t.Fatal("statically deadlocking SPMD binary passed the preflight")
	}
	if !strings.Contains(err.Error(), "preflight failed") {
		t.Fatalf("rejection did not come from the preflight: %v", err)
	}
	// -lint stops after the report without running.
	o.lintOnly = true
	if err := run(masm, o); err == nil {
		t.Fatal("-lint exited clean on a rejected program")
	}
}

func TestRunCSVCreatesDir(t *testing.T) {
	masm := t.TempDir() + "/add.masm"
	if err := writeFile(masm, "COMPUTE rfh0 vrf0\nADD r0 r1 r2\nCOMPUTE_DONE\n"); err != nil {
		t.Fatal(err)
	}
	// The target directory (and its parent) do not exist yet.
	csvDir := filepath.Join(t.TempDir(), "missing", "nested")
	o := baseOpts()
	o.csvDir = csvDir
	if err := run(masm, o); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(csvDir, "add.csv")); err != nil {
		t.Fatalf("CSV not written into created directory: %v", err)
	}
}
