package main

import "testing"

func TestParseAddr(t *testing.T) {
	addr, reg, err := parseAddr("1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if addr.RFH != 1 || addr.VRF != 2 || reg != 3 {
		t.Fatalf("parsed %v r%d", addr, reg)
	}
	for _, bad := range []string{"", "1.2", "1.2.3.4", "a.b.c", "1..3"} {
		if _, _, err := parseAddr(bad); err == nil {
			t.Errorf("parseAddr(%q) succeeded", bad)
		}
	}
}

func TestParseSet(t *testing.T) {
	addr, reg, vals, err := parseSet("0.1.2=10,0x20,3")
	if err != nil {
		t.Fatal(err)
	}
	if addr.RFH != 0 || addr.VRF != 1 || reg != 2 {
		t.Fatalf("addr %v r%d", addr, reg)
	}
	want := []uint64{10, 0x20, 3}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	for _, bad := range []string{"0.1.2", "0.1.2=", "0.1.2=x", "0.1=1"} {
		if _, _, _, err := parseSet(bad); err == nil {
			t.Errorf("parseSet(%q) succeeded", bad)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("/nonexistent.masm", "racer", "mpu", 1, nil, nil, false); err == nil {
		t.Error("missing file accepted")
	}
}
