// Command repolint enforces repository-wide source hygiene rules that go vet
// does not cover. It is stdlib-only (go/parser + go/ast) and runs from
// `make check`.
//
// Rules:
//
//  1. rand-global-source — no calls through math/rand's package-level
//     generator (rand.Intn, rand.Uint64, ...). Experiments must be
//     reproducible from explicit seeds, so every generator flows through
//     rand.New(rand.NewSource(seed)). Constructor calls (New, NewSource)
//     are allowed everywhere; internal/workloads hosts the seeding helpers
//     and is exempt.
//
//  2. bitvec-import — only internal/bitvec and internal/vrf may import
//     mpu/internal/bitvec. Bit-plane mutation is the datapath's lowest
//     layer; every other package must go through the vrf abstraction so
//     capacity checks and energy accounting cannot be bypassed.
//
//  3. machine-stats-mutation — inside internal/machine, the machine-wide
//     stats struct may only be written (or have its address taken) by the
//     reduceStats merge. Everything on the execution path accumulates into
//     the per-core local counters; a direct mutation of a `.stats` field
//     would race under the parallel scheduler and break the byte-identical
//     worker-count parity.
//
//  4. http-server-timeouts — no http.ListenAndServe/ListenAndServeTLS
//     (they build servers with no timeouts at all), and every http.Server
//     composite literal must set WriteTimeout plus ReadTimeout or
//     ReadHeaderTimeout. mpud is a long-running daemon; a server without
//     these lets one stalled client pin a connection forever. Test files
//     are exempt (they use httptest).
//
//  5. jit-counter-mutation — inside internal/machine, the JITCompiles and
//     JITReplays counters may only be written by the closure-compile path
//     (compileJIT), the replay loop (replayRound), and the reduceStats
//     merge. The counters are the observable contract that the JIT engaged;
//     a write anywhere else could fake engagement without compiling, or
//     double-charge a round.
//
//  6. rendezvous-state-mutation — inside internal/machine, the NoC matching
//     state (waitSend/waitRecv/sendDst/recvSrc) may only be written by the
//     core dispatch that parks on SEND/RECV (core.run), the barrier-phase
//     matcher (rendezvous), the lifecycle resets (Reset, Rewind), and the
//     snapshot restore path (Restore, decodeCore). The deadlock detector
//     and the commlint soundness oracle both read this state as ground
//     truth for who waits on whom; a write anywhere else could unblock a
//     core without a matching transfer or fake a pending rendezvous that
//     never existed.
//
//  7. snapshot-resume-state-mutation — inside internal/machine, the
//     preemption resume state (the mid-ensemble ens cursor, the seg
//     progress counter, and the machine-level midRun flag) may only be
//     written by the execution path that advances it (core.run,
//     runComputeEnsemble, runEnsembleRounds, Machine.Run), the lifecycle
//     resets (Reset, Rewind), and the snapshot restore path (Restore,
//     decodeCore). Snapshot/resume parity is byte-exact because exactly
//     these writers agree on the cursor's meaning; a write anywhere else
//     could fast-forward rounds that were never charged or mark a
//     mid-flight run as quiesced.
//
//  8. session-state-mutation — inside internal/serve, the pipeline session
//     table (the manager's `sessions` map) may only be written — assigned,
//     inserted into, or deleted from — by the session manager's audited
//     lifecycle paths: createSession, advanceSession, and closeSession.
//     Every HTTP handler and metrics path reads the table under the manager
//     mutex; a write anywhere else could install a session that was never
//     admitted (bypassing the MaxSessions 503 and the 422 lint gate) or
//     drop one whose parked snapshot is still live.
//
// Usage: repolint [root]   (default root ".")
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	findings, err := lintTree(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// randConstructors are the math/rand selectors that build explicit
// generators rather than touching the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func lintTree(root string) ([]string, error) {
	var findings []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		fs, err := lintFile(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		findings = append(findings, fs...)
		return nil
	})
	return findings, err
}

func lintFile(path, rel string) ([]string, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var findings []string
	addf := func(pos token.Pos, rule, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s [%s]",
			fset.Position(pos), fmt.Sprintf(format, args...), rule))
	}

	// Rule 2: bitvec-import.
	inBitvecLayer := strings.HasPrefix(rel, "internal/bitvec/") || strings.HasPrefix(rel, "internal/vrf/")
	// Rule 1 exemption: the workloads package owns the seeding helpers.
	inWorkloads := strings.HasPrefix(rel, "internal/workloads/")

	// Rules 3, 5, 6, and 7: machine-stats-mutation, jit-counter-mutation,
	// rendezvous-state-mutation, and snapshot-resume-state-mutation
	// (non-test machine sources only).
	if strings.HasPrefix(rel, "internal/machine/") && !strings.HasSuffix(rel, "_test.go") {
		lintStatsMutation(file, addf)
		lintJITCounterMutation(file, addf)
		lintRendezvousMutation(file, addf)
		lintSnapshotStateMutation(file, addf)
	}

	// Rule 8: session-state-mutation (non-test serve sources only).
	if strings.HasPrefix(rel, "internal/serve/") && !strings.HasSuffix(rel, "_test.go") {
		lintSessionTableMutation(file, addf)
	}

	randNames := map[string]bool{} // local names bound to math/rand
	httpNames := map[string]bool{} // local names bound to net/http
	for _, imp := range file.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		switch p {
		case "mpu/internal/bitvec":
			if !inBitvecLayer {
				addf(imp.Pos(), "bitvec-import",
					"import of mpu/internal/bitvec outside internal/bitvec and internal/vrf — mutate planes through internal/vrf")
			}
		case "math/rand", "math/rand/v2":
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				randNames[name] = true
			}
		case "net/http":
			name := "http"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				httpNames[name] = true
			}
		}
	}

	// Rule 4: http-server-timeouts (non-test files).
	if len(httpNames) > 0 && !strings.HasSuffix(rel, "_test.go") {
		lintHTTPServers(file, httpNames, addf)
	}

	if inWorkloads || len(randNames) == 0 {
		return findings, nil
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || !randNames[id.Name] || id.Obj != nil { // id.Obj != nil: shadowed local
			return true
		}
		if !randConstructors[sel.Sel.Name] {
			addf(call.Pos(), "rand-global-source",
				"%s.%s uses math/rand's global source — thread a rand.New(rand.NewSource(seed)) generator instead",
				id.Name, sel.Sel.Name)
		}
		return true
	})
	return findings, nil
}

// lintHTTPServers enforces rule 4: no bare http.ListenAndServe helpers, and
// every http.Server literal names WriteTimeout plus a read-side timeout so a
// stalled client cannot pin a connection on a long-running daemon.
func lintHTTPServers(file *ast.File, httpNames map[string]bool, addf func(pos token.Pos, rule, format string, args ...any)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !httpNames[id.Name] || id.Obj != nil { // id.Obj != nil: shadowed local
				return true
			}
			if sel.Sel.Name == "ListenAndServe" || sel.Sel.Name == "ListenAndServeTLS" {
				addf(e.Pos(), "http-server-timeouts",
					"%s.%s builds a server with no timeouts — construct an http.Server with ReadHeaderTimeout/WriteTimeout",
					id.Name, sel.Sel.Name)
			}
		case *ast.CompositeLit:
			sel, ok := e.Type.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Server" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !httpNames[id.Name] || id.Obj != nil {
				return true
			}
			var hasRead, hasWrite bool
			for _, elt := range e.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				switch key.Name {
				case "ReadTimeout", "ReadHeaderTimeout":
					hasRead = true
				case "WriteTimeout":
					hasWrite = true
				}
			}
			if !hasRead || !hasWrite {
				addf(e.Pos(), "http-server-timeouts",
					"http.Server literal without both a read-side timeout (ReadTimeout or ReadHeaderTimeout) and WriteTimeout")
			}
		}
		return true
	})
}

// touchesJITCounter reports whether the expression's selector chain ends in
// one of the trace-JIT counters (c.local.JITCompiles, st.JITReplays, ...).
func touchesJITCounter(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "JITCompiles" || sel.Sel.Name == "JITReplays") {
			found = true
			return false
		}
		return true
	})
	return found
}

// jitCounterWriters are the only functions rule 5 lets mutate the JIT
// counters: the closure-compile path, the replay loop that consumes compiled
// programs, the stats merge, and the snapshot decoder that reinstates a
// serialized Stats block verbatim.
var jitCounterWriters = map[string]bool{
	"compileJIT":  true,
	"replayRound": true,
	"reduceStats": true,
	"decodeStats": true,
}

// lintJITCounterMutation enforces rule 5: within internal/machine, only the
// designated writers may assign to or increment JITCompiles/JITReplays, so
// the counters cannot report JIT engagement from anywhere but the compile
// and replay paths themselves.
func lintJITCounterMutation(file *ast.File, addf func(pos token.Pos, rule, format string, args ...any)) {
	const explain = "— only compileJIT, replayRound, reduceStats, and decodeStats may write the JIT counters"
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || jitCounterWriters[fn.Name.Name] || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if touchesJITCounter(lhs) {
						addf(lhs.Pos(), "jit-counter-mutation",
							"%s assigns a JIT counter %s", fn.Name.Name, explain)
					}
				}
			case *ast.IncDecStmt:
				if touchesJITCounter(s.X) {
					addf(s.X.Pos(), "jit-counter-mutation",
						"%s increments a JIT counter %s", fn.Name.Name, explain)
				}
			}
			return true
		})
	}
}

// rendezvousFields is the per-core NoC matching state rule 6 guards.
var rendezvousFields = map[string]bool{
	"waitSend": true,
	"waitRecv": true,
	"sendDst":  true,
	"recvSrc":  true,
}

// touchesRendezvousState reports whether the expression's selector chain
// ends in one of the rendezvous fields (c.waitSend, r.recvSrc, ...).
func touchesRendezvousState(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && rendezvousFields[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// rendezvousWriters are the only functions rule 6 lets mutate the matching
// state: the dispatch that parks a core on SEND/RECV, the barrier-phase
// matcher that completes the transfer, the lifecycle resets, and the
// snapshot restore path that reinstates serialized wait state.
var rendezvousWriters = map[string]bool{
	"run":        true,
	"rendezvous": true,
	"Reset":      true,
	"Rewind":     true,
	"Restore":    true,
	"decodeCore": true,
}

// lintRendezvousMutation enforces rule 6: within internal/machine, only the
// designated writers may assign to or increment the rendezvous fields, so
// the wait-for relation the deadlock diagnostic and commlint verify against
// cannot be forged from anywhere else.
func lintRendezvousMutation(file *ast.File, addf func(pos token.Pos, rule, format string, args ...any)) {
	const explain = "— only core.run, rendezvous, Reset, Rewind, and the snapshot restore path may write the NoC matching state"
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || rendezvousWriters[fn.Name.Name] || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if touchesRendezvousState(lhs) {
						addf(lhs.Pos(), "rendezvous-state-mutation",
							"%s assigns rendezvous state %s", fn.Name.Name, explain)
					}
				}
			case *ast.IncDecStmt:
				if touchesRendezvousState(s.X) {
					addf(s.X.Pos(), "rendezvous-state-mutation",
						"%s increments rendezvous state %s", fn.Name.Name, explain)
				}
			}
			return true
		})
	}
}

// snapshotStateFields is the preemption resume state rule 7 guards: the
// mid-ensemble cursor, the per-run segment progress counter, and the
// machine-level mid-run flag.
var snapshotStateFields = map[string]bool{
	"ens":    true,
	"seg":    true,
	"midRun": true,
}

// touchesSnapshotState reports whether the expression's selector chain goes
// through one of the resume-state fields (c.ens.round, c.seg, m.midRun, ...).
func touchesSnapshotState(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && snapshotStateFields[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// snapshotStateWriters are the only functions rule 7 lets mutate the resume
// state: the execution path that advances the cursor, the lifecycle resets,
// and the snapshot restore path.
var snapshotStateWriters = map[string]bool{
	"run":                true,
	"runComputeEnsemble": true,
	"runEnsembleRounds":  true,
	"Run":                true,
	"Reset":              true,
	"Rewind":             true,
	"Restore":            true,
	"decodeCore":         true,
}

// lintSnapshotStateMutation enforces rule 7: within internal/machine, only
// the designated writers may assign to or increment the preemption resume
// state, so a snapshot taken at an ensemble boundary always describes work
// that was actually charged — nothing can fast-forward the round cursor or
// flip the mid-run flag from outside the audited paths.
func lintSnapshotStateMutation(file *ast.File, addf func(pos token.Pos, rule, format string, args ...any)) {
	const explain = "— only the run path (core.run, runComputeEnsemble, runEnsembleRounds, Machine.Run), the resets (Reset, Rewind), and the restore path (Restore, decodeCore) may write the preemption resume state"
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || snapshotStateWriters[fn.Name.Name] || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if touchesSnapshotState(lhs) {
						addf(lhs.Pos(), "snapshot-resume-state-mutation",
							"%s assigns preemption resume state %s", fn.Name.Name, explain)
					}
				}
			case *ast.IncDecStmt:
				if touchesSnapshotState(s.X) {
					addf(s.X.Pos(), "snapshot-resume-state-mutation",
						"%s increments preemption resume state %s", fn.Name.Name, explain)
				}
			}
			return true
		})
	}
}

// touchesSessionTable reports whether the expression's selector chain goes
// through a field named "sessions" (s.sess.sessions, s.sess.sessions[id]).
func touchesSessionTable(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "sessions" {
			found = true
			return false
		}
		return true
	})
	return found
}

// sessionTableWriters are the only functions rule 8 lets mutate the session
// table: the manager's audited create/advance/close lifecycle.
var sessionTableWriters = map[string]bool{
	"createSession":  true,
	"advanceSession": true,
	"closeSession":   true,
}

// lintSessionTableMutation enforces rule 8: within internal/serve, only the
// session manager's lifecycle paths may assign to, insert into, or delete
// from the sessions map — every other path reads it under the manager mutex.
func lintSessionTableMutation(file *ast.File, addf func(pos token.Pos, rule, format string, args ...any)) {
	const explain = "— only createSession, advanceSession, and closeSession may write the session table"
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || sessionTableWriters[fn.Name.Name] || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if touchesSessionTable(lhs) {
						addf(lhs.Pos(), "session-state-mutation",
							"%s assigns the session table %s", fn.Name.Name, explain)
					}
				}
			case *ast.IncDecStmt:
				if touchesSessionTable(s.X) {
					addf(s.X.Pos(), "session-state-mutation",
						"%s mutates the session table %s", fn.Name.Name, explain)
				}
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "delete" && id.Obj == nil &&
					len(s.Args) > 0 && touchesSessionTable(s.Args[0]) {
					addf(s.Pos(), "session-state-mutation",
						"%s deletes from the session table %s", fn.Name.Name, explain)
				}
			}
			return true
		})
	}
}

// touchesStats reports whether the expression's selector chain goes through
// a field named "stats" (c.m.stats.Cycles, m.stats, ...).
func touchesStats(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "stats" {
			found = true
			return false
		}
		return true
	})
	return found
}

// lintStatsMutation enforces rule 3: within internal/machine, only the
// reduceStats merge may assign to the machine-wide stats struct or take its
// address — the execution path must charge the per-core local counters.
func lintStatsMutation(file *ast.File, addf func(pos token.Pos, rule, format string, args ...any)) {
	const explain = "— accumulate into the core's local Stats; only reduceStats merges into m.stats"
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name == "reduceStats" || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if touchesStats(lhs) {
						addf(lhs.Pos(), "machine-stats-mutation",
							"%s assigns through .stats %s", fn.Name.Name, explain)
					}
				}
			case *ast.IncDecStmt:
				if touchesStats(s.X) {
					addf(s.X.Pos(), "machine-stats-mutation",
						"%s increments through .stats %s", fn.Name.Name, explain)
				}
			case *ast.UnaryExpr:
				if s.Op == token.AND && touchesStats(s.X) {
					addf(s.X.Pos(), "machine-stats-mutation",
						"%s takes the address of .stats %s", fn.Name.Name, explain)
				}
			}
			return true
		})
	}
}
