package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRepolintRules(t *testing.T) {
	root := t.TempDir()
	// Violation: global rand source outside workloads.
	write(t, root, "internal/sweep/s.go", `package sweep
import "math/rand"
func f() int { return rand.Intn(10) }
`)
	// Allowed: explicit generator construction.
	write(t, root, "internal/sweep/ok.go", `package sweep
import "math/rand"
func g() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	// Allowed: workloads seeding helper.
	write(t, root, "internal/workloads/w.go", `package workloads
import "math/rand"
func h() int { return rand.Intn(10) }
`)
	// Violation: bitvec import outside the plane layer.
	write(t, root, "internal/machine/m.go", `package machine
import _ "mpu/internal/bitvec"
`)
	// Allowed: the vrf layer owns the planes.
	write(t, root, "internal/vrf/v.go", `package vrf
import _ "mpu/internal/bitvec"
`)
	// Violations: writing or aliasing the machine-wide stats outside the
	// reduction; allowed: the reduceStats merge itself and test files.
	write(t, root, "internal/machine/stats.go", `package machine
type Stats struct{ Cycles int64 }
type Machine struct{ stats Stats }
func (m *Machine) step()  { m.stats.Cycles++ }
func (m *Machine) alias() { st := &m.stats; st.Cycles = 0 }
func (m *Machine) reduceStats() *Stats {
	m.stats = Stats{}
	return &m.stats
}
`)
	write(t, root, "internal/machine/stats_test.go", `package machine
func poke(m *Machine) { m.stats.Cycles = 1 }
`)
	// Violations: JIT counters written outside the designated paths;
	// allowed: compileJIT, replayRound, reduceStats, and test files.
	write(t, root, "internal/machine/jit.go", `package machine
type local struct{ JITCompiles, JITReplays uint64 }
func sneak(l *local)       { l.JITCompiles++ }
func fake(l *local)        { l.JITReplays = 99 }
func compileJIT(l *local)  { l.JITCompiles++ }
func replayRound(l *local) { l.JITReplays++ }
`)
	write(t, root, "internal/machine/jit_test.go", `package machine
func pokeJIT(l *local) { l.JITReplays = 1 }
`)
	// Violations: rendezvous matching state written outside the designated
	// writers; allowed: run, rendezvous, Reset, Rewind, reads, and tests.
	write(t, root, "internal/machine/rdv.go", `package machine
type core struct {
	waitSend, waitRecv bool
	sendDst, recvSrc   int
}
func forge(c *core)      { c.waitSend = false }
func retarget(c *core)   { c.recvSrc++ }
func peek(c *core) bool  { return c.waitRecv }
func run(c *core)        { c.waitSend = true; c.sendDst = 1 }
func rendezvous(c *core) { c.waitSend, c.waitRecv = false, false }
func (c *core) Reset()   { c.sendDst, c.recvSrc = -1, -1 }
`)
	write(t, root, "internal/machine/rdv_test.go", `package machine
func pokeRdv(c *core) { c.waitRecv = true }
`)
	// Violations: preemption resume state written outside the designated
	// writers; allowed: the run path, resets, restore path, reads, tests.
	write(t, root, "internal/machine/snapstate.go", `package machine
type ensState struct{ round int }
type core2 struct {
	ens ensState
	seg int64
}
type Machine2 struct{ midRun bool }
func fastForward(c *core2)        { c.ens.round = 99 }
func fakeProgress(c *core2)       { c.seg++ }
func quiesce(m *Machine2)         { m.midRun = false }
func observe(c *core2) int        { return c.ens.round }
func runEnsembleRounds(c *core2)  { c.ens.round++; c.seg++ }
func Reset(c *core2, m *Machine2) { c.ens = ensState{}; c.seg = 0; m.midRun = false }
func Restore(m *Machine2)         { m.midRun = true }
`)
	write(t, root, "internal/machine/snapstate_test.go", `package machine
func pokeSnap(c *core2) { c.seg = 7 }
`)
	// Violations: the session table written outside the manager's lifecycle
	// paths; allowed: the audited writers, reads, and test files.
	write(t, root, "internal/serve/sess.go", `package serve
type session struct{ id string }
type sessionManager struct{ sessions map[string]*session }
func install(m *sessionManager, s *session) { m.sessions[s.id] = s }
func evict(m *sessionManager, id string)    { delete(m.sessions, id) }
func rebuild(m *sessionManager)             { m.sessions = map[string]*session{} }
func count(m *sessionManager) int           { return len(m.sessions) }
func createSession(m *sessionManager, s *session) { m.sessions[s.id] = s }
func closeSession(m *sessionManager, id string)   { delete(m.sessions, id) }
`)
	write(t, root, "internal/serve/sess_test.go", `package serve
func pokeSess(m *sessionManager) { m.sessions = nil }
`)
	// Violations: the no-timeout helper and a bare http.Server literal;
	// allowed: a literal with explicit timeouts, and test files.
	write(t, root, "cmd/bad/main.go", `package main
import "net/http"
func main() {
	http.ListenAndServe(":8080", nil)
	_ = &http.Server{Addr: ":8081"}
}
`)
	write(t, root, "cmd/good/main.go", `package main
import (
	"net/http"
	"time"
)
func main() {
	s := &http.Server{ReadHeaderTimeout: time.Second, WriteTimeout: time.Second}
	_ = s
}
`)
	write(t, root, "cmd/good/main_test.go", `package main
import "net/http"
func helper() { http.ListenAndServe(":0", nil) }
`)

	findings, err := lintTree(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 16 {
		t.Fatalf("got %d findings, want 16:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{"rand-global-source", "bitvec-import", "machine-stats-mutation", "http-server-timeouts", "jit-counter-mutation", "rendezvous-state-mutation", "snapshot-resume-state-mutation", "session-state-mutation"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q finding:\n%s", want, joined)
		}
	}
	if n := strings.Count(joined, "machine-stats-mutation"); n != 2 {
		t.Errorf("got %d machine-stats-mutation findings, want 2 (increment + address-taking; reduceStats and tests exempt):\n%s", n, joined)
	}
	if n := strings.Count(joined, "http-server-timeouts"); n != 2 {
		t.Errorf("got %d http-server-timeouts findings, want 2 (helper call + bare literal; timeouts and tests exempt):\n%s", n, joined)
	}
	if n := strings.Count(joined, "jit-counter-mutation"); n != 2 {
		t.Errorf("got %d jit-counter-mutation findings, want 2 (increment + assignment; designated writers and tests exempt):\n%s", n, joined)
	}
	if n := strings.Count(joined, "rendezvous-state-mutation"); n != 2 {
		t.Errorf("got %d rendezvous-state-mutation findings, want 2 (assignment + increment; designated writers, reads, and tests exempt):\n%s", n, joined)
	}
	if n := strings.Count(joined, "snapshot-resume-state-mutation"); n != 3 {
		t.Errorf("got %d snapshot-resume-state-mutation findings, want 3 (cursor fast-forward + seg increment + midRun flip; designated writers, reads, and tests exempt):\n%s", n, joined)
	}
	if n := strings.Count(joined, "session-state-mutation"); n != 3 {
		t.Errorf("got %d session-state-mutation findings, want 3 (insert + delete + reassign; audited writers, reads, and tests exempt):\n%s", n, joined)
	}
}

// The repository itself must be clean.
func TestRepolintSelf(t *testing.T) {
	findings, err := lintTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("repository not repolint-clean:\n%s", strings.Join(findings, "\n"))
	}
}
