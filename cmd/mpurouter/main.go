// Command mpurouter fronts a cluster of mpud nodes: it shards /v1/execute
// requests by consistent hashing on (backend, mode, program-hash) so
// identical programs land on the node whose caches already hold them, applies
// per-tenant weighted-fair admission, retries and hedges around slow or
// failed nodes, and tracks node health from each node's /healthz and
// /metrics.
//
// Usage:
//
//	mpurouter -nodes http://h1:8080,http://h2:8080 [-addr :9100]
//	          [-candidates 2] [-retries 2] [-hedge] [-hedge-max 250ms]
//	          [-max-inflight 256] [-tenant-queue 128]
//	          [-tenants alice=3,bob=1] [-scrape 250ms]
//	          [-autoscale-depth 32] [-autoscale-sustain 8] [-quiet]
//
// Endpoints mirror mpud: POST /v1/execute (with X-Tenant and X-No-Hedge
// request headers; responses carry X-Mpurouter-Node and
// X-Mpurouter-Attempts), GET /v1/workloads, GET /healthz (cluster view),
// GET /metrics (router series; node gauges are re-exported with node
// labels). The /v1/pipelines session plane passes through with session
// affinity: creates are placed by ring hash on the graph source, every
// later verb for a session ID is forwarded single-attempt (never hedged,
// never retried — advances are non-idempotent) to the node holding its
// parked state, and GET /v1/pipelines merges every node's session list.
//
// On SIGTERM/SIGINT the router drains: admission stops (503 + Retry-After),
// in-flight forwards complete, then the scraper stops. Node drains are
// delivered to nodes directly (signal their processes) — the router only
// observes them via /healthz and routes around.
//
// -smoke self-hosts a 2-node in-process cluster, routes requests through
// the full stack, verifies byte-identical stats from both a direct node hit
// and the routed path, and exits — the CI end-to-end check.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mpu/internal/machine"
	"mpu/internal/router"
	"mpu/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9100", "listen address (host:port; :0 picks a free port)")
	nodes := flag.String("nodes", "", "comma-separated mpud base URLs (required)")
	candidates := flag.Int("candidates", 2, "candidate nodes per key (primary + spill/hedge set)")
	retries := flag.Int("retries", 2, "extra attempts after a 503 or transport failure")
	hedge := flag.Bool("hedge", true, "hedge slow requests with a speculative duplicate")
	hedgeMin := flag.Duration("hedge-min", time.Millisecond, "hedge trigger delay floor")
	hedgeMax := flag.Duration("hedge-max", 250*time.Millisecond, "hedge trigger delay ceiling")
	spill := flag.Float64("spill", 4, "load-gap hysteresis before a key spills off its primary node")
	maxInflight := flag.Int("max-inflight", 256, "concurrently forwarded requests across all tenants")
	tenantQueue := flag.Int("tenant-queue", 128, "per-tenant admission queue bound (429 beyond)")
	tenants := flag.String("tenants", "", "tenant weights: name=weight,... (unlisted tenants weigh 1)")
	scrape := flag.Duration("scrape", 250*time.Millisecond, "node health/metrics scrape interval")
	autoDepth := flag.Int("autoscale-depth", 32, "queue depth that starts an autoscale-advisory episode (0 disables)")
	autoSustain := flag.Int("autoscale-sustain", 8, "consecutive hot scrapes before the advisory fires")
	quiet := flag.Bool("quiet", false, "suppress JSON routing logs")
	smoke := flag.Bool("smoke", false, "self-test: in-process 2-node cluster, parity check, exit")
	flag.Parse()

	if err := run(*addr, *nodes, *candidates, *retries, *hedge, *hedgeMin, *hedgeMax,
		*spill, *maxInflight, *tenantQueue, *tenants, *scrape, *autoDepth, *autoSustain,
		*quiet, *smoke); err != nil {
		fmt.Fprintf(os.Stderr, "mpurouter: %v\n", err)
		os.Exit(1)
	}
}

func parseTenants(s string) (map[string]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("tenant entry %q: want name=weight", part)
		}
		w, err := strconv.Atoi(wStr)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("tenant entry %q: weight must be a positive integer", part)
		}
		out[name] = w
	}
	return out, nil
}

func run(addr, nodes string, candidates, retries int, hedge bool, hedgeMin, hedgeMax time.Duration,
	spill float64, maxInflight, tenantQueue int, tenantSpec string, scrape time.Duration,
	autoDepth, autoSustain int, quiet, smoke bool) error {
	if smoke {
		return smokeTest()
	}
	weights, err := parseTenants(tenantSpec)
	if err != nil {
		return err
	}
	var nodeList []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	var logs io.Writer = os.Stderr
	if quiet {
		logs = nil
	}
	rt, err := router.New(router.Config{
		Nodes:            nodeList,
		Candidates:       candidates,
		Retries:          retries,
		Hedge:            hedge,
		HedgeMin:         hedgeMin,
		HedgeMax:         hedgeMax,
		SpillLoad:        spill,
		MaxInflight:      maxInflight,
		TenantQueue:      tenantQueue,
		Tenants:          weights,
		ScrapeInterval:   scrape,
		AutoscaleDepth:   autoDepth,
		AutoscaleSustain: autoSustain,
		Logs:             logs,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// Explicit timeouts on every edge, the repolint rule-4 shape shared with
	// mpud: a stalled client must not pin a connection.
	hs := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      3 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("mpurouter: listening on %s (%d nodes)\n", ln.Addr(), len(nodeList))

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Printf("mpurouter: %s: draining\n", s)
	}

	rt.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	rt.Close()
	fmt.Println("mpurouter: drained")
	return nil
}

// smokeTest brings up two in-process mpud nodes and a router over them, then
// checks the routed path end to end: health, a routed execution whose stats
// are byte-identical to a direct node hit (the determinism contract the
// hedging policy rests on), and the metrics exposition.
func smokeTest() error {
	var nodeURLs []string
	var cleanups []func()
	defer func() {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]()
		}
	}()
	for i := 0; i < 2; i++ {
		srv, err := serve.New(serve.Config{
			Pools:  []serve.PoolSpec{{Backend: "racer", Mode: machine.ModeMPU, Size: 1}},
			NodeID: fmt.Sprintf("node%d", i),
		})
		if err != nil {
			return err
		}
		cleanups = append(cleanups, srv.Close)
		url, closeHTTP, err := hostLoopback(srv)
		if err != nil {
			return err
		}
		cleanups = append(cleanups, func() { closeHTTP() })
		nodeURLs = append(nodeURLs, url)
	}
	rt, err := router.New(router.Config{
		Nodes:          nodeURLs,
		Hedge:          true,
		ScrapeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	cleanups = append(cleanups, rt.Close)
	routerURL, closeHTTP, err := hostLoopback(rt)
	if err != nil {
		return err
	}
	cleanups = append(cleanups, func() { closeHTTP() })

	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(routerURL + "/healthz")
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{
		"workload": "gcd", "backend": "racer", "elements": 256, "seed": 7, "check": true,
	})
	direct, err := executeStats(client, nodeURLs[0], body)
	if err != nil {
		return fmt.Errorf("direct node: %w", err)
	}
	for i := 0; i < 4; i++ {
		routed, err := executeStats(client, routerURL, body)
		if err != nil {
			return fmt.Errorf("routed request %d: %w", i, err)
		}
		if !bytes.Equal(direct, routed) {
			return fmt.Errorf("routed stats diverge from direct node:\n%s\nvs\n%s", direct, routed)
		}
	}

	resp, err = client.Get(routerURL + "/metrics")
	if err != nil {
		return err
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(metrics, []byte(`mpurouter_requests_total{code="200"} 4`)) {
		return fmt.Errorf("metrics did not count the requests:\n%s", metrics)
	}
	fmt.Println("mpurouter: smoke ok")
	return nil
}

func executeStats(client *http.Client, base string, body []byte) ([]byte, error) {
	resp, err := client.Post(base+"/v1/execute", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, out)
	}
	var r struct {
		Stats json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal(out, &r); err != nil || len(r.Stats) == 0 {
		return nil, fmt.Errorf("bad body %s", out)
	}
	return r.Stats, nil
}

func hostLoopback(h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
	}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), hs.Close, nil
}
