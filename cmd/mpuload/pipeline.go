package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"mpu/internal/exp"
	"mpu/internal/serve"
)

// The -pipeline study: instead of independent /v1/execute requests, the
// generator opens persistent pipeline sessions from a .fbp graph and streams
// records through them — the session plane's open-loop counterpart to the
// execute studies. Each record is one advance request (restore → Rewind →
// run → park), so the measured latency is the full per-record cost of a
// parked session, including the snapshot round-trip that keeps sessions from
// pinning machines. The recompilation account splits cold (each session's
// first request, where traces record and the JIT compiles) from warm
// (everything after), because the steady-state claim is warm == zero.

// pipelineStudy is the -pipeline study JSON.
type pipelineStudy struct {
	Config struct {
		Pipeline          string  `json:"pipeline"`
		Backend           string  `json:"backend"`
		Sessions          int     `json:"sessions"`
		RecordsPerRequest int     `json:"records_per_request"`
		Duration          string  `json:"duration"`
		RateHz            float64 `json:"rate_hz"` // 0 = closed loop
		Nodes             int     `json:"nodes"`
	} `json:"config"`
	Placement struct {
		MPUs  int `json:"mpus"`
		Lanes int `json:"lanes"`
		Hops  int `json:"hops"`
	} `json:"placement"`
	Totals struct {
		Requests uint64 `json:"requests"`
		Records  uint64 `json:"records"`
		Errors   uint64 `json:"errors"`
		Shed     uint64 `json:"shed"`
	} `json:"totals"`
	Throughput struct {
		RecordsPerSec float64 `json:"records_per_sec"`
	} `json:"throughput"`
	RecordLatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"record_latency_ms"`
	Recompilation struct {
		ColdTraceMisses uint64 `json:"cold_trace_misses"`
		ColdJITCompiles uint64 `json:"cold_jit_compiles"`
		WarmTraceMisses uint64 `json:"warm_trace_misses"`
		WarmJITCompiles uint64 `json:"warm_jit_compiles"`
	} `json:"recompilation"`
}

// pipeClient wraps the HTTP plumbing shared by the study and the bench.
type pipeClient struct {
	client *http.Client
	base   string
}

func (pc *pipeClient) do(method, path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, pc.base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := pc.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// createPipeline opens one session and returns the create response.
func (pc *pipeClient) createPipeline(source, backend string) (*serve.PipelineResponse, error) {
	status, body, err := pc.do(http.MethodPost, "/v1/pipelines", serve.PipelineRequest{Source: source, Backend: backend})
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("create pipeline: status %d: %s", status, body)
	}
	var created serve.PipelineResponse
	if err := json.Unmarshal(body, &created); err != nil {
		return nil, err
	}
	return &created, nil
}

// advancePipeline streams records records through the session, writing a
// varying vector into reg 0 of the input node before each record.
func (pc *pipeClient) advancePipeline(id, inputNode string, lanes, records int, base uint64) (*serve.AdvanceResponse, error) {
	recs := make([]serve.PipelineRecord, records)
	for i := range recs {
		vals := make([]uint64, lanes)
		for l := range vals {
			vals[l] = base + uint64(i*lanes+l)
		}
		recs[i] = serve.PipelineRecord{Sets: []serve.PipelineSet{{Node: inputNode, Reg: 0, Values: vals}}}
	}
	status, body, err := pc.do(http.MethodPost, "/v1/pipelines/"+id, serve.AdvanceRequest{Records: recs})
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("advance %s: status %d: %s", id, status, body)
	}
	var resp serve.AdvanceResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

func (pc *pipeClient) closePipeline(id string) error {
	status, body, err := pc.do(http.MethodDelete, "/v1/pipelines/"+id, nil)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("close %s: status %d: %s", id, status, body)
	}
	return nil
}

// runPipelineStudy streams a .fbp pipeline for the study duration and
// reports per-record latency percentiles and the recompilation account.
func runPipelineStudy(o opts, path string) (*pipelineStudy, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if o.url != "" && o.nodes > 0 {
		return nil, fmt.Errorf("-nodes and -url are mutually exclusive")
	}
	if o.sessions <= 0 {
		o.sessions = 1
	}
	if o.recordsPer <= 0 {
		o.recordsPer = 1
	}

	url := o.url
	var shutdown func() error
	if url == "" {
		if o.nodes > 0 {
			url, _, shutdown, err = selfHostCluster(o, nil)
		} else {
			url, shutdown, err = selfHost(o, 0)
		}
		if err != nil {
			return nil, err
		}
		defer shutdown()
	}
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	defer transport.CloseIdleConnections()
	pc := &pipeClient{client: &http.Client{Timeout: 2 * time.Minute, Transport: transport}, base: url}

	s := &pipelineStudy{}
	s.Config.Pipeline = path
	s.Config.Backend = o.pipeBackend
	s.Config.Sessions = o.sessions
	s.Config.RecordsPerRequest = o.recordsPer
	s.Config.Duration = o.duration.String()
	s.Config.RateHz = o.rate
	s.Config.Nodes = o.nodes

	// One session per stream; the input node is the first placed node (the
	// graph's source — placement is first-appearance order).
	type stream struct {
		id    string
		input string
		lanes int
		queue chan time.Time // arrival times awaiting service (open loop)
		first bool           // first advance not yet issued (cold)
	}
	streams := make([]*stream, o.sessions)
	for i := range streams {
		created, err := pc.createPipeline(string(src), o.pipeBackend)
		if err != nil {
			return nil, err
		}
		if len(created.Nodes) == 0 {
			return nil, fmt.Errorf("pipeline %s placed no nodes", created.ID)
		}
		streams[i] = &stream{
			id: created.ID, input: created.Nodes[0].Name, lanes: created.Lanes,
			queue: make(chan time.Time, 64), first: true,
		}
		if i == 0 {
			s.Placement.MPUs = created.MPUs
			s.Placement.Lanes = created.Lanes
			s.Placement.Hops = created.Hops
		}
	}
	defer func() {
		for _, st := range streams {
			pc.closePipeline(st.id)
		}
	}()

	var (
		mu        sync.Mutex
		latencies []float64 // per-record seconds, successful requests only
	)
	stop := make(chan struct{})
	start := time.Now()
	go func() {
		time.Sleep(o.duration)
		close(stop)
	}()

	// serve one advance request on a stream; t0 is the moment the record
	// became due (arrival time in open loop, issue time in closed loop), so
	// queue wait counts against the latency — the honest open-loop measure.
	serveOne := func(st *stream, t0 time.Time, base uint64) {
		resp, err := pc.advancePipeline(st.id, st.input, st.lanes, o.recordsPer, base)
		sec := time.Since(t0).Seconds() / float64(o.recordsPer)
		mu.Lock()
		defer mu.Unlock()
		s.Totals.Requests++
		if err != nil {
			s.Totals.Errors++
			return
		}
		s.Totals.Records += uint64(resp.Summary.Records)
		for i := 0; i < resp.Summary.Records; i++ {
			latencies = append(latencies, sec)
		}
		if st.first {
			st.first = false
			s.Recompilation.ColdTraceMisses += resp.Summary.TraceMisses
			s.Recompilation.ColdJITCompiles += resp.Summary.JITCompiles
		} else {
			s.Recompilation.WarmTraceMisses += resp.Summary.TraceMisses
			s.Recompilation.WarmJITCompiles += resp.Summary.JITCompiles
		}
	}

	var wg sync.WaitGroup
	for si, st := range streams {
		wg.Add(1)
		go func(si int, st *stream) {
			defer wg.Done()
			for i := 0; ; i++ {
				base := uint64(si*1_000_000 + i)
				if o.rate > 0 {
					select {
					case <-stop:
						return
					case t0 := <-st.queue:
						serveOne(st, t0, base)
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
					serveOne(st, time.Now(), base)
				}
			}
		}(si, st)
	}
	if o.rate > 0 {
		// Open loop: Poisson arrivals at the aggregate rate, round-robin
		// across sessions. A session whose bounded queue is full sheds the
		// arrival — a session admits one advance at a time, so backlog
		// beyond the queue means the offered rate exceeds its service rate.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1))
			next := time.Now()
			for i := 0; ; i++ {
				next = next.Add(time.Duration(rng.ExpFloat64() / o.rate * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					select {
					case <-stop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				select {
				case streams[i%len(streams)].queue <- time.Now():
				default:
					mu.Lock()
					s.Totals.Shed++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	s.Throughput.RecordsPerSec = float64(s.Totals.Records) / elapsed.Seconds()
	pct := func(p float64) float64 { return exp.Percentile(latencies, p) * 1e3 }
	s.RecordLatencyMS.P50 = pct(0.50)
	s.RecordLatencyMS.P90 = pct(0.90)
	s.RecordLatencyMS.P99 = pct(0.99)
	s.RecordLatencyMS.Max = pct(1.0)

	fmt.Printf("mpuload: pipeline %s on %s: %d sessions, %d records in %.1fs (%.1f rec/s), "+
		"record p50/p90/p99 %.2f/%.2f/%.2f ms, warm misses %d, warm JIT %d, shed %d, errors %d\n",
		path, o.pipeBackend, o.sessions, s.Totals.Records, elapsed.Seconds(), s.Throughput.RecordsPerSec,
		s.RecordLatencyMS.P50, s.RecordLatencyMS.P90, s.RecordLatencyMS.P99,
		s.Recompilation.WarmTraceMisses, s.Recompilation.WarmJITCompiles, s.Totals.Shed, s.Totals.Errors)
	return s, nil
}

// pipelineBenchSource is the bench's streaming graph: a source that splits
// the record register feeding a resident accumulator — the minimal shape
// that exercises cross-MPU rendezvous, parked state, and warm-trace replay.
const pipelineBenchSource = "src(Split) OUT -> IN total(Reduce)\n" +
	"'1' -> REGS src\n" +
	"'add' -> OP total\n"

// pipelineBench is the PR 10 acceptance suite. Phase one streams >= 1000
// records through one session across many separate HTTP requests and holds
// the steady-state claim to its floor: after the first request, zero trace
// misses and zero JIT compiles — every record rides traces recorded during
// record one, across parks and restores. Phase two streams the same session
// closed-loop while a latency-class burst arrives on /v1/execute, and
// requires the burst to be absorbed without a single refusal — sessions
// park between requests, so pipeline streaming never pins the machines the
// latency class needs.
func pipelineBench(out string) error {
	if out == "" {
		out = "BENCH_pr10.json"
	}
	const (
		steadyRequests = 125
		recordsPerReq  = 8 // steadyRequests * recordsPerReq = 1000 records
		burstN         = 40
		burstClients   = 4
	)
	var bench struct {
		Config struct {
			Pools             string `json:"pools"`
			Backend           string `json:"backend"`
			SteadyRequests    int    `json:"steady_requests"`
			RecordsPerRequest int    `json:"records_per_request"`
			BurstRequests     int    `json:"burst_requests"`
		} `json:"config"`
		Steady struct {
			Records         uint64  `json:"records"`
			ColdTraceMisses uint64  `json:"cold_trace_misses"`
			ColdJITCompiles uint64  `json:"cold_jit_compiles"`
			WarmTraceMisses uint64  `json:"warm_trace_misses"`
			WarmJITCompiles uint64  `json:"warm_jit_compiles"`
			RecordP50MS     float64 `json:"record_p50_ms"`
			RecordP99MS     float64 `json:"record_p99_ms"`
			RecordsPerSec   float64 `json:"records_per_sec"`
		} `json:"steady"`
		Burst struct {
			LatencyOK       uint64  `json:"latency_ok"`
			LatencyRefused  uint64  `json:"latency_refused"`
			LatencyP99MS    float64 `json:"latency_p99_ms"`
			PipelineRecords uint64  `json:"pipeline_records_during_burst"`
			PipelineErrors  uint64  `json:"pipeline_errors"`
		} `json:"burst"`
		Floors struct {
			MinRecords        uint64 `json:"min_records"`
			MaxWarmMisses     uint64 `json:"max_warm_trace_misses"`
			MaxWarmJIT        uint64 `json:"max_warm_jit_compiles"`
			MaxBurstRefusals  uint64 `json:"max_burst_refusals"`
			MaxPipelineErrors uint64 `json:"max_pipeline_errors"`
		} `json:"floors"`
	}
	bench.Config.Pools = "racer:mpu:2"
	bench.Config.Backend = "racer"
	bench.Config.SteadyRequests = steadyRequests
	bench.Config.RecordsPerRequest = recordsPerReq
	bench.Config.BurstRequests = burstN
	bench.Floors.MinRecords = 1000
	bench.Floors.MaxBurstRefusals = 0
	bench.Floors.MaxPipelineErrors = 0

	o := opts{pools: bench.Config.Pools, queue: 64, window: time.Millisecond, maxParked: 8}
	url, shutdown, err := selfHost(o, 0)
	if err != nil {
		return err
	}
	defer shutdown()
	transport := &http.Transport{MaxIdleConnsPerHost: 16}
	defer transport.CloseIdleConnections()
	client := &http.Client{Timeout: 2 * time.Minute, Transport: transport}
	pc := &pipeClient{client: client, base: url}

	// ---- Phase 1: steady stream, recompilation floor -----------------------
	created, err := pc.createPipeline(pipelineBenchSource, "racer")
	if err != nil {
		return err
	}
	input := created.Nodes[0].Name
	var latencies []float64
	steadyStart := time.Now()
	for r := 0; r < steadyRequests; r++ {
		t0 := time.Now()
		resp, err := pc.advancePipeline(created.ID, input, created.Lanes, recordsPerReq, uint64(r))
		if err != nil {
			return fmt.Errorf("steady request %d: %w", r, err)
		}
		latencies = append(latencies, time.Since(t0).Seconds()/recordsPerReq)
		bench.Steady.Records += uint64(resp.Summary.Records)
		if r == 0 {
			bench.Steady.ColdTraceMisses = resp.Summary.TraceMisses
			bench.Steady.ColdJITCompiles = resp.Summary.JITCompiles
		} else {
			bench.Steady.WarmTraceMisses += resp.Summary.TraceMisses
			bench.Steady.WarmJITCompiles += resp.Summary.JITCompiles
		}
	}
	steadySec := time.Since(steadyStart).Seconds()
	bench.Steady.RecordP50MS = exp.Percentile(latencies, 0.50) * 1e3
	bench.Steady.RecordP99MS = exp.Percentile(latencies, 0.99) * 1e3
	bench.Steady.RecordsPerSec = float64(bench.Steady.Records) / steadySec

	// ---- Phase 2: latency-class burst against a streaming session ----------
	burstStop := make(chan struct{})
	var pipeWG sync.WaitGroup
	pipeWG.Add(1)
	go func() {
		defer pipeWG.Done()
		for i := steadyRequests; ; i++ {
			select {
			case <-burstStop:
				return
			default:
			}
			resp, err := pc.advancePipeline(created.ID, input, created.Lanes, recordsPerReq, uint64(i))
			if err != nil {
				bench.Burst.PipelineErrors++
				return
			}
			bench.Burst.PipelineRecords += uint64(resp.Summary.Records)
		}
	}()

	var (
		burstMu  sync.Mutex
		burstLat []float64
	)
	var burstWG sync.WaitGroup
	for c := 0; c < burstClients; c++ {
		burstWG.Add(1)
		go func(c int) {
			defer burstWG.Done()
			for i := c; i < burstN; i += burstClients {
				body, _ := json.Marshal(map[string]any{
					"workload": "vecadd", "backend": "racer", "elements": 128, "seed": i, "check": true,
				})
				t0 := time.Now()
				status, _, err := post(client, url+"/v1/execute", "", serve.ClassLatency, body)
				sec := time.Since(t0).Seconds()
				burstMu.Lock()
				if err == nil && status == http.StatusOK {
					bench.Burst.LatencyOK++
					burstLat = append(burstLat, sec)
				} else {
					bench.Burst.LatencyRefused++
				}
				burstMu.Unlock()
			}
		}(c)
	}
	burstWG.Wait()
	close(burstStop)
	pipeWG.Wait()
	bench.Burst.LatencyP99MS = exp.Percentile(burstLat, 0.99) * 1e3
	if err := pc.closePipeline(created.ID); err != nil {
		return err
	}

	// ---- Floors ------------------------------------------------------------
	if bench.Steady.Records < bench.Floors.MinRecords {
		return fmt.Errorf("floor: %d records streamed, need >= %d", bench.Steady.Records, bench.Floors.MinRecords)
	}
	if bench.Steady.WarmTraceMisses > bench.Floors.MaxWarmMisses {
		return fmt.Errorf("floor: %d trace misses after the first request — sessions are recompiling", bench.Steady.WarmTraceMisses)
	}
	if bench.Steady.WarmJITCompiles > bench.Floors.MaxWarmJIT {
		return fmt.Errorf("floor: %d JIT compiles after the first request — sessions are recompiling", bench.Steady.WarmJITCompiles)
	}
	if bench.Burst.LatencyRefused > bench.Floors.MaxBurstRefusals {
		return fmt.Errorf("floor: %d latency-class requests refused during the burst — pipeline streaming is pinning machines", bench.Burst.LatencyRefused)
	}
	if bench.Burst.PipelineErrors > bench.Floors.MaxPipelineErrors {
		return fmt.Errorf("floor: %d pipeline errors under concurrent burst", bench.Burst.PipelineErrors)
	}

	if err := exp.WriteJSON(out, &bench); err != nil {
		return err
	}
	fmt.Printf("mpuload: pipeline-bench ok: %d records over %d requests (warm misses %d, warm JIT %d), "+
		"record p50/p99 %.2f/%.2f ms; burst %d/%d ok at p99 %.1f ms with %d pipeline records alongside; wrote %s\n",
		bench.Steady.Records, steadyRequests, bench.Steady.WarmTraceMisses, bench.Steady.WarmJITCompiles,
		bench.Steady.RecordP50MS, bench.Steady.RecordP99MS,
		bench.Burst.LatencyOK, burstN, bench.Burst.LatencyP99MS, bench.Burst.PipelineRecords, out)
	return nil
}
