// Command mpuload is a load generator for mpud and mpurouter. By default it
// runs closed-loop: N concurrent clients each issue a request, wait for the
// response, and immediately issue the next, cycling through a workload mix.
// With -rate it runs open-loop instead: request arrivals follow a Poisson
// process at the given aggregate rate regardless of how fast responses come
// back, the honest way to measure tail latency under offered load. It
// reports throughput, latency percentiles, and the admission outcome
// histogram, and writes the study as JSON.
//
// Usage:
//
//	mpuload [-url http://host:port] [-c 64] [-duration 10s]
//	        [-pools racer:mpu:2,...] [-mix gcd:racer,relu:mimdram,...]
//	        [-elements 128] [-rate 200] [-tenants 4] [-drain] [-strict]
//	        [-nodes 3] [-hedge=false] [-slow 1:25ms] [-out BENCH.json]
//	        [-classes latency=2,batch=20] [-nopreempt] [-max-parked 8]
//	mpuload -pipeline file.fbp [-pipeline-backend racer] [-sessions 2]
//	        [-records-per-request 1] [-rate 50] [-duration 10s]
//	mpuload -cluster-bench [-out BENCH_pr8.json]
//	mpuload -qos-bench [-out BENCH_pr9.json]
//	mpuload -pipeline-bench [-out BENCH_pr10.json]
//
// -pipeline streams records through persistent pipeline sessions compiled
// from the .fbp graph (one create, then one advance request per record
// batch), closed-loop per session or open-loop with -rate, and reports
// per-record latency percentiles plus the recompilation account: cold
// counters cover each session's first request, warm counters everything
// after — steady state is warm == zero. -pipeline-bench is the PR 10
// acceptance suite: >= 1000 records across separate requests with zero warm
// recompilation, and a latency-class burst absorbed without refusals while
// the session streams.
//
// -classes runs a mixed-QoS open-loop study: each entry is an independent
// Poisson arrival stream at the given rate (requests/sec) tagged with that
// X-QoS class, and the study reports per-class latency percentiles and shed
// counts. With -strict the run exits non-zero if any class shed arrivals
// (the generator could not keep its offered load honest). -nopreempt and
// -max-parked forward to the self-hosted daemon's QoS scheduler.
//
// With no -url, mpuload self-hosts an in-process serve.Server on a loopback
// port — the standard way to run the study without a separate daemon. With
// -nodes N it self-hosts an N-node cluster instead: N serve.Servers fronted
// by an in-process mpurouter tier, so multi-node studies need no external
// processes. -slow idx:dur (idx "all" for every node) adds an artificial
// per-batch delay to a node, the slow-node fixture for hedging studies.
//
// -drain delivers a real SIGTERM to the process at half duration: the
// drained server (node 0 in cluster mode) stops admitting while admitted
// requests run to completion and, in cluster mode, the router re-routes
// around it. The study records how many in-flight requests the drain
// dropped; the acceptance contract is zero.
//
// On 503/429 the closed loop honors the Retry-After header before retrying
// instead of hammering a full admission queue.
//
// -cluster-bench runs the PR 8 acceptance suite: 1→2→4-node throughput
// scaling, p99 with and without hedging under one slow node, and a rolling
// node drain under open-loop load, written as one JSON study.
//
// -qos-bench runs the PR 9 acceptance suite: one resident heavy batch job
// on a single-machine pool with open-loop latency-class arrivals, measured
// with ensemble-boundary preemption enabled and disabled.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mpu/internal/exp"
	"mpu/internal/router"
	"mpu/internal/serve"
)

type mixEntry struct {
	workload string
	backend  string
	mode     string
}

// study is the per-run JSON schema (BENCH_pr5.json and the components of
// BENCH_pr8.json).
type study struct {
	Config struct {
		Clients  int      `json:"clients"`
		Duration string   `json:"duration"`
		Pools    string   `json:"pools"`
		Mix      []string `json:"mix"`
		Elements int      `json:"elements"`
		Drain    bool     `json:"drain"`
		Nodes    int      `json:"nodes,omitempty"`
		RateHz   float64  `json:"rate_hz,omitempty"`
		Classes  string   `json:"classes,omitempty"`
		Tenants  int      `json:"tenants,omitempty"`
		Hedge    bool     `json:"hedge,omitempty"`
		Slow     string   `json:"slow,omitempty"`
	} `json:"config"`
	Totals struct {
		Requests   uint64            `json:"requests"`
		OK         uint64            `json:"ok"`
		Refused    uint64            `json:"refused_503"`
		Refused429 uint64            `json:"refused_429,omitempty"`
		Dropped    uint64            `json:"dropped"`
		Shed       uint64            `json:"shed_open_loop,omitempty"`
		ByStatus   map[string]uint64 `json:"by_status"`
	} `json:"totals"`
	Throughput struct {
		OKPerSec float64 `json:"ok_per_sec"`
	} `json:"throughput"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Classes    map[string]*classStudy `json:"classes,omitempty"`
	Cluster    *clusterStats          `json:"cluster,omitempty"`
	DrainStudy *drainStudy            `json:"drain_study,omitempty"`
}

// classStudy is the per-QoS-class slice of a mixed -classes run. Shed counts
// arrivals the generator had to skip for that class (outstanding-set full);
// a non-zero shed means the offered per-class rate was not honestly applied.
type classStudy struct {
	RateHz    float64 `json:"rate_hz"`
	Requests  uint64  `json:"requests"`
	OK        uint64  `json:"ok"`
	Shed      uint64  `json:"shed,omitempty"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
}

// classRate is one parsed -classes entry; order follows the flag so the
// arrival-stream mixing is deterministic.
type classRate struct {
	class string
	rate  float64
}

// parseClasses parses "latency=2,batch=20" into per-class open-loop Poisson
// rates, validating each class name against the daemon's QoS vocabulary.
func parseClasses(s string) ([]classRate, error) {
	var out []classRate
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rateStr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("classes entry %q: want class=rate", part)
		}
		class, err := serve.ParseClass(name)
		if err != nil {
			return nil, fmt.Errorf("classes entry %q: %v", part, err)
		}
		if seen[class] {
			return nil, fmt.Errorf("classes entry %q: class %s repeated", part, class)
		}
		seen[class] = true
		rate, err := strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("classes entry %q: rate must be a positive requests/sec value", part)
		}
		out = append(out, classRate{class: class, rate: rate})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty classes spec %q", s)
	}
	return out, nil
}

// clusterStats is the router-side accounting for a cluster-mode run; the
// hedge rate is reported honestly alongside whatever p99 it bought.
type clusterStats struct {
	Nodes     int     `json:"nodes"`
	Hedges    uint64  `json:"hedges"`
	HedgeWins uint64  `json:"hedge_wins"`
	Retries   uint64  `json:"retries"`
	HedgeRate float64 `json:"hedge_rate"`
}

type drainStudy struct {
	AtMS              float64 `json:"at_ms"`
	InflightAtDrain   int64   `json:"inflight_at_drain"`
	InflightCompleted int64   `json:"inflight_completed"`
	InflightDropped   int64   `json:"inflight_dropped"`
	OKAfterDrain      uint64  `json:"ok_after_drain"`
	RefusedAfterDrain uint64  `json:"refused_after_drain"`
}

// opts collects one run's knobs.
type opts struct {
	url      string
	clients  int
	duration time.Duration
	pools    string
	mixSpec  string
	elements int
	queue    int
	window   time.Duration
	drain    bool
	strict   bool
	seeds    int // distinct seed values cycled per request (1 maximizes coalescing)
	nodes    int // 0 = single self-host without router; >=1 = routed cluster
	rate     float64
	tenants  int
	hedge    bool
	hedgeMax time.Duration
	slowSpec string

	classesSpec string // per-class open-loop rates ("latency=2,batch=20")
	maxElements int    // self-hosted per-request element cap (0 = serve default)
	nopreempt   bool   // self-hosted: disable ensemble-boundary preemption
	maxParked   int    // self-hosted: parking-lot bound per pool

	pipeBackend string // -pipeline: back end for the sessions
	sessions    int    // -pipeline: concurrent pipeline sessions
	recordsPer  int    // -pipeline: records per advance request
}

func main() {
	var o opts
	flag.StringVar(&o.url, "url", "", "target base URL; empty self-hosts an in-process server (or cluster with -nodes)")
	flag.IntVar(&o.clients, "c", 64, "concurrent closed-loop clients (ignored with -rate)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "study length")
	flag.StringVar(&o.pools, "pools", "racer:mpu:2,mimdram:mpu:2,dcache:mpu:2,simdram:mpu:2",
		"self-hosted pools per node: backend:mode[:size],...")
	flag.StringVar(&o.mixSpec, "mix", "gcd:racer,relu:mimdram,vecadd:dcache,vecxor:simdram",
		"request mix: workload:backend[:mode],... cycled per client")
	flag.IntVar(&o.elements, "elements", 128, "elements per request")
	flag.IntVar(&o.queue, "queue", 64, "self-hosted admission queue depth per pool")
	flag.DurationVar(&o.window, "window", 2*time.Millisecond, "self-hosted batching window")
	flag.BoolVar(&o.drain, "drain", false, "SIGTERM the self-hosted server (node 0 in cluster mode) at half duration")
	flag.BoolVar(&o.strict, "strict", false, "exit non-zero on any dropped request or transport error")
	flag.IntVar(&o.seeds, "seeds", 8, "distinct seed values cycled across requests (higher defeats batch coalescing)")
	flag.IntVar(&o.nodes, "nodes", 0, "self-host an N-node cluster behind an in-process router (0 = plain single server)")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop Poisson arrival rate, requests/sec (0 = closed loop)")
	flag.IntVar(&o.tenants, "tenants", 0, "spread requests across N tenant names via X-Tenant")
	flag.BoolVar(&o.hedge, "hedge", true, "cluster mode: enable hedged retries in the router")
	flag.DurationVar(&o.hedgeMax, "hedge-max", 250*time.Millisecond, "cluster mode: hedge trigger delay ceiling")
	flag.StringVar(&o.slowSpec, "slow", "", "cluster mode: artificial per-batch node delay, idx:dur[,idx:dur] (idx 'all' = every node)")
	flag.StringVar(&o.classesSpec, "classes", "", "mixed-QoS open loop: per-class Poisson rates, class=hz[,class=hz]")
	flag.IntVar(&o.maxElements, "max-elements", 0, "self-hosted per-request element cap (0 = daemon default)")
	flag.BoolVar(&o.nopreempt, "nopreempt", false, "self-hosted: disable ensemble-boundary preemption")
	flag.IntVar(&o.maxParked, "max-parked", 8, "self-hosted: parking-lot bound per pool for preempted-job snapshots")
	bench := flag.Bool("cluster-bench", false, "run the scaling + hedging + rolling-drain acceptance suite")
	qosb := flag.Bool("qos-bench", false, "run the QoS preemption acceptance suite (latency tails vs batch throughput)")
	pipePath := flag.String("pipeline", "", "stream records through persistent .fbp pipeline sessions instead of /v1/execute")
	flag.StringVar(&o.pipeBackend, "pipeline-backend", "racer", "-pipeline: back end for the sessions")
	flag.IntVar(&o.sessions, "sessions", 2, "-pipeline: concurrent pipeline sessions")
	flag.IntVar(&o.recordsPer, "records-per-request", 1, "-pipeline: records batched into each advance request")
	pipeBench := flag.Bool("pipeline-bench", false, "run the persistent-pipeline acceptance suite (steady-state recompilation + burst isolation)")
	out := flag.String("out", "", "write the study JSON to this path")
	flag.Parse()

	var err error
	switch {
	case *bench:
		err = clusterBench(*out)
	case *qosb:
		err = qosBench(*out)
	case *pipeBench:
		err = pipelineBench(*out)
	case *pipePath != "":
		var s *pipelineStudy
		s, err = runPipelineStudy(o, *pipePath)
		if err == nil && *out != "" {
			if err = exp.WriteJSON(*out, s); err == nil {
				fmt.Printf("mpuload: wrote %s\n", *out)
			}
		}
	default:
		var s *study
		s, err = runStudy(o)
		if err == nil && *out != "" {
			if err = exp.WriteJSON(*out, s); err == nil {
				fmt.Printf("mpuload: wrote %s\n", *out)
			}
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mpuload: %v\n", err)
		os.Exit(1)
	}
}

func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) < 2 || len(f) > 3 {
			return nil, fmt.Errorf("mix entry %q: want workload:backend[:mode]", part)
		}
		e := mixEntry{workload: f[0], backend: f[1], mode: "mpu"}
		if len(f) == 3 {
			e.mode = f[2]
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return out, nil
}

// parseSlow parses "idx:dur[,idx:dur]"; index -1 means every node.
func parseSlow(s string) (map[int]time.Duration, error) {
	out := map[int]time.Duration{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idxStr, durStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("slow entry %q: want idx:duration", part)
		}
		d, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("slow entry %q: %v", part, err)
		}
		if idxStr == "all" {
			out[-1] = d
			continue
		}
		i, err := strconv.Atoi(idxStr)
		if err != nil || i < 0 {
			return nil, fmt.Errorf("slow entry %q: bad node index", part)
		}
		out[i] = d
	}
	return out, nil
}

func runStudy(o opts) (*study, error) {
	mix, err := parseMix(o.mixSpec)
	if err != nil {
		return nil, err
	}
	slow, err := parseSlow(o.slowSpec)
	if err != nil {
		return nil, err
	}
	if o.drain && o.url != "" {
		return nil, fmt.Errorf("-drain requires a self-hosted target (no -url)")
	}
	if o.url != "" && o.nodes > 0 {
		return nil, fmt.Errorf("-nodes and -url are mutually exclusive")
	}
	var classes []classRate
	if o.classesSpec != "" {
		if o.rate > 0 {
			return nil, fmt.Errorf("-classes carries its own per-class rates; drop -rate")
		}
		if classes, err = parseClasses(o.classesSpec); err != nil {
			return nil, err
		}
		for _, c := range classes {
			o.rate += c.rate
		}
	}

	url := o.url
	var shutdown func() error
	var rt *router.Router
	if url == "" {
		if o.nodes > 0 {
			url, rt, shutdown, err = selfHostCluster(o, slow)
		} else {
			url, shutdown, err = selfHost(o, slow[-1]+slow[0])
		}
		if err != nil {
			return nil, err
		}
	}

	// perClass aggregates the -classes slices; guarded by mu like the totals.
	type classAcc struct {
		requests  uint64
		ok        uint64
		shed      uint64
		latencies []float64
	}
	perClass := map[string]*classAcc{}
	for _, c := range classes {
		perClass[c.class] = &classAcc{}
	}

	var (
		mu        sync.Mutex
		latencies []float64 // seconds, OK requests only
		byStatus  = map[string]uint64{}
		requests  uint64
		ok        uint64
		refused   uint64
		saturated uint64
		dropped   uint64
		shed      uint64

		drainedAt   atomic.Int64 // unix nanos, 0 = not drained
		inflight    atomic.Int64
		inflightAtD atomic.Int64
		okAfter     atomic.Uint64
		refAfter    atomic.Uint64
		straddleOK  atomic.Int64 // requests in flight at drain that completed OK
		straddleBad atomic.Int64 // ... that were dropped
	)

	// A dedicated transport per run: studies back to back (cluster-bench)
	// must not share idle connections to a previous run's dead cluster.
	transport := &http.Transport{MaxIdleConnsPerHost: 64}
	defer transport.CloseIdleConnections()
	client := &http.Client{Timeout: 2 * time.Minute, Transport: transport}
	stop := make(chan struct{})
	start := time.Now()

	sig := make(chan os.Signal, 1)
	if o.drain {
		signal.Notify(sig, syscall.SIGTERM)
		defer signal.Stop(sig)
		go func() {
			time.Sleep(o.duration / 2)
			p, _ := os.FindProcess(os.Getpid())
			p.Signal(syscall.SIGTERM)
		}()
	}
	go func() {
		if o.drain {
			<-sig
			// Record the in-flight population the drain must not drop, then
			// stop admission on the drained node. The HTTP layer stays up so
			// refused requests get clean 503s and admitted ones complete; in
			// cluster mode the router re-routes around the node.
			inflightAtD.Store(inflight.Load())
			drainedAt.Store(time.Now().UnixNano())
			drainSelfHosted()
		}
		time.Sleep(time.Until(start.Add(o.duration)))
		close(stop)
	}()

	// issue runs one request and does all outcome accounting; it returns the
	// status and Retry-After hint so the closed loop can back off.
	seeds := o.seeds
	if seeds <= 0 {
		seeds = 8
	}
	issue := func(i int, class string) (int, string, error) {
		e := mix[i%len(mix)]
		body, _ := json.Marshal(map[string]any{
			"workload": e.workload, "backend": e.backend, "mode": e.mode,
			"elements": o.elements, "seed": int64(i % seeds), "check": true,
		})
		tenant := ""
		if o.tenants > 0 {
			tenant = fmt.Sprintf("tenant%d", i%o.tenants)
		}
		preDrain := drainedAt.Load() == 0
		inflight.Add(1)
		t0 := time.Now()
		status, retryAfter, err := post(client, url+"/v1/execute", tenant, class, body)
		sec := time.Since(t0).Seconds()
		inflight.Add(-1)
		straddled := preDrain && drainedAt.Load() != 0

		mu.Lock()
		requests++
		cs := perClass[class]
		if cs != nil {
			cs.requests++
		}
		if err != nil {
			byStatus["error"]++
			dropped++
		} else {
			byStatus[fmt.Sprint(status)]++
			switch status {
			case http.StatusOK:
				ok++
				latencies = append(latencies, sec)
				if cs != nil {
					cs.ok++
					cs.latencies = append(cs.latencies, sec)
				}
			case http.StatusServiceUnavailable:
				refused++
			case http.StatusTooManyRequests:
				saturated++
			default:
				dropped++
			}
		}
		mu.Unlock()

		refusal := status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests
		if drainedAt.Load() != 0 && !straddled {
			if status == http.StatusOK {
				okAfter.Add(1)
			} else if refusal {
				refAfter.Add(1)
			}
		}
		if straddled {
			if err == nil && status == http.StatusOK {
				straddleOK.Add(1)
			} else if err != nil || !refusal {
				straddleBad.Add(1)
			}
		}
		return status, retryAfter, err
	}

	var wg sync.WaitGroup
	if o.rate > 0 {
		// Open loop: Poisson arrivals at the configured aggregate rate; each
		// arrival is an independent one-shot request, never a retry. A
		// bounded outstanding set keeps an overloaded target from exploding
		// the generator; skipped arrivals are counted as shed, not dropped.
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1))
			sem := make(chan struct{}, 4096)
			var owg sync.WaitGroup
			defer owg.Wait()
			next := time.Now()
			for i := 0; ; i++ {
				next = next.Add(time.Duration(rng.ExpFloat64() / o.rate * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					select {
					case <-stop:
						return
					case <-time.After(d):
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
				// With -classes the merged stream is thinned probabilistically
				// by rate share — equivalent to independent per-class Poisson
				// processes at each configured rate.
				class := ""
				if len(classes) > 0 {
					pick := rng.Float64() * o.rate
					for _, c := range classes {
						if pick -= c.rate; pick < 0 || c.class == classes[len(classes)-1].class {
							class = c.class
							break
						}
					}
				}
				select {
				case sem <- struct{}{}:
					owg.Add(1)
					go func(i int, class string) {
						defer owg.Done()
						defer func() { <-sem }()
						issue(i, class)
					}(i, class)
				default:
					mu.Lock()
					shed++
					if cs := perClass[class]; cs != nil {
						cs.shed++
					}
					mu.Unlock()
				}
			}
		}()
	} else {
		for c := 0; c < o.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Stride by the client count so no two clients ever issue the
				// same (workload, seed) pair concurrently — overlapping
				// sequences would let the server coalesce what are meant to
				// be independent requests.
				for i := c; ; i += o.clients {
					select {
					case <-stop:
						return
					default:
					}
					status, retryAfter, err := issue(i, "")
					if err == nil && (status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests) {
						// Honor backpressure: wait out the server's own
						// Retry-After hint instead of hammering a full (or
						// draining) admission queue.
						select {
						case <-stop:
							return
						case <-time.After(retryDelay(retryAfter)):
						}
					}
				}
			}(c)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var s study
	s.Config.Clients = o.clients
	if o.rate > 0 {
		s.Config.Clients = 0
	}
	s.Config.Duration = o.duration.String()
	s.Config.Pools = o.pools
	for _, e := range mix {
		s.Config.Mix = append(s.Config.Mix, e.workload+":"+e.backend+":"+e.mode)
	}
	s.Config.Elements = o.elements
	s.Config.Drain = o.drain
	s.Config.Nodes = o.nodes
	s.Config.RateHz = o.rate
	s.Config.Classes = o.classesSpec
	s.Config.Tenants = o.tenants
	s.Config.Hedge = o.nodes > 0 && o.hedge
	s.Config.Slow = o.slowSpec
	s.Totals.Requests = requests
	s.Totals.OK = ok
	s.Totals.Refused = refused
	s.Totals.Refused429 = saturated
	s.Totals.Dropped = dropped
	s.Totals.Shed = shed
	s.Totals.ByStatus = byStatus
	s.Throughput.OKPerSec = float64(ok) / elapsed.Seconds()
	pct := func(p float64) float64 { return exp.Percentile(latencies, p) * 1e3 }
	s.LatencyMS.P50 = pct(0.50)
	s.LatencyMS.P90 = pct(0.90)
	s.LatencyMS.P99 = pct(0.99)
	s.LatencyMS.Max = pct(1.0)
	if len(classes) > 0 {
		s.Classes = map[string]*classStudy{}
		for _, c := range classes {
			acc := perClass[c.class]
			cs := &classStudy{RateHz: c.rate, Requests: acc.requests, OK: acc.ok, Shed: acc.shed}
			cpct := func(p float64) float64 { return exp.Percentile(acc.latencies, p) * 1e3 }
			cs.LatencyMS.P50 = cpct(0.50)
			cs.LatencyMS.P90 = cpct(0.90)
			cs.LatencyMS.P99 = cpct(0.99)
			cs.LatencyMS.Max = cpct(1.0)
			s.Classes[c.class] = cs
		}
	}
	if rt != nil {
		hedges, wins, retries := rt.Hedging()
		cs := &clusterStats{Nodes: o.nodes, Hedges: hedges, HedgeWins: wins, Retries: retries}
		if requests > 0 {
			cs.HedgeRate = float64(hedges) / float64(requests)
		}
		s.Cluster = cs
	}
	if o.drain {
		s.DrainStudy = &drainStudy{
			AtMS:              float64(drainedAt.Load()-start.UnixNano()) / 1e6,
			InflightAtDrain:   inflightAtD.Load(),
			InflightCompleted: straddleOK.Load(),
			InflightDropped:   straddleBad.Load(),
			OKAfterDrain:      okAfter.Load(),
			RefusedAfterDrain: refAfter.Load(),
		}
	}

	if shutdown != nil {
		if err := shutdown(); err != nil {
			return nil, err
		}
	}

	fmt.Printf("mpuload: %s: %d requests, %d ok (%.1f/s), %d refused, %d saturated, %d dropped, %d shed\n",
		elapsed.Round(time.Millisecond), requests, ok, s.Throughput.OKPerSec, refused, saturated, dropped, shed)
	fmt.Printf("mpuload: latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		s.LatencyMS.P50, s.LatencyMS.P90, s.LatencyMS.P99, s.LatencyMS.Max)
	for _, c := range classes {
		cs := s.Classes[c.class]
		fmt.Printf("mpuload: class %-8s %.1f/s offered: %d ok, %d shed; ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
			c.class, c.rate, cs.OK, cs.Shed, cs.LatencyMS.P50, cs.LatencyMS.P90, cs.LatencyMS.P99, cs.LatencyMS.Max)
	}
	if s.Cluster != nil {
		fmt.Printf("mpuload: cluster %d nodes: %d hedges (%d won, rate %.3f), %d retries\n",
			s.Cluster.Nodes, s.Cluster.Hedges, s.Cluster.HedgeWins, s.Cluster.HedgeRate, s.Cluster.Retries)
	}
	if s.DrainStudy != nil {
		d := s.DrainStudy
		fmt.Printf("mpuload: drain at %.0fms: %d in flight, %d completed, %d dropped; after: %d ok, %d refused\n",
			d.AtMS, d.InflightAtDrain, d.InflightCompleted, d.InflightDropped, d.OKAfterDrain, d.RefusedAfterDrain)
		if d.InflightDropped > 0 || dropped > 0 {
			return nil, fmt.Errorf("drain dropped %d in-flight requests (%d dropped total)", d.InflightDropped, dropped)
		}
	}
	if o.strict && (dropped > 0 || byStatus["error"] > 0) {
		return nil, fmt.Errorf("strict: %d dropped, %d transport errors", dropped, byStatus["error"])
	}
	if o.strict {
		// A shed arrival means the generator silently under-offered that
		// class, so its percentiles are not trustworthy — per-class runs
		// treat any shed as a failed study.
		for _, c := range classes {
			if n := perClass[c.class].shed; n > 0 {
				return nil, fmt.Errorf("strict: class %s shed %d arrivals", c.class, n)
			}
		}
	}
	return &s, nil
}

// retryDelay turns a Retry-After header into a backoff, bounded so a
// misbehaving hint cannot stall the loop.
func retryDelay(retryAfter string) time.Duration {
	d := 100 * time.Millisecond
	if sec, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && sec > 0 {
		d = time.Duration(sec) * time.Second
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d
}

func post(client *http.Client, url, tenant, qos string, body []byte) (int, string, error) {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if qos != "" {
		req.Header.Set("X-QoS", qos)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// Self-hosted server plumbing. drainSelfHosted stops admission only (on
// node 0 in cluster mode); the HTTP layer and pools shut down in the
// function returned by selfHost/selfHostCluster.
var selfHosted *serve.Server

func drainSelfHosted() {
	if selfHosted != nil {
		selfHosted.Drain()
	}
}

// hostServe puts a serve.Server behind a loopback http.Server with the
// repolint-mandated timeouts and returns its base URL and closer.
func hostServe(h http.Handler) (string, func() error, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
	}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), hs.Close, nil
}

func selfHost(o opts, debugDelay time.Duration) (string, func() error, error) {
	specs, err := serve.ParsePoolSpecs(o.pools)
	if err != nil {
		return "", nil, err
	}
	srv, err := serve.New(serve.Config{
		Pools:       specs,
		QueueDepth:  o.queue,
		BatchWindow: o.window,
		MaxElements: o.maxElements,
		NoPreempt:   o.nopreempt,
		MaxParked:   o.maxParked,
		DebugDelay:  debugDelay,
		Logs:        nil,
	})
	if err != nil {
		return "", nil, err
	}
	selfHosted = srv
	url, closeHTTP, err := hostServe(srv)
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	shutdown := func() error {
		srv.Drain()
		if err := closeHTTP(); err != nil {
			return err
		}
		srv.Close()
		return nil
	}
	return url, shutdown, nil
}

// selfHostCluster builds an N-node in-process cluster — N serve.Servers on
// loopback ports behind one router — and returns the router's base URL, the
// router handle (for hedge accounting), and a shutdown closure. Node 0 is
// registered as the drain target.
func selfHostCluster(o opts, slow map[int]time.Duration) (string, *router.Router, func() error, error) {
	specs, err := serve.ParsePoolSpecs(o.pools)
	if err != nil {
		return "", nil, nil, err
	}
	var (
		servers  []*serve.Server
		closers  []func() error
		nodeURLs []string
		closeAll = func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
			for _, s := range servers {
				s.Drain()
				s.Close()
			}
		}
	)
	for i := 0; i < o.nodes; i++ {
		delay := slow[i]
		if d, ok := slow[-1]; ok {
			delay += d
		}
		srv, err := serve.New(serve.Config{
			Pools:       specs,
			QueueDepth:  o.queue,
			BatchWindow: o.window,
			MaxElements: o.maxElements,
			NoPreempt:   o.nopreempt,
			MaxParked:   o.maxParked,
			NodeID:      fmt.Sprintf("node%d", i),
			DebugDelay:  delay,
			Logs:        nil,
		})
		if err != nil {
			closeAll()
			return "", nil, nil, err
		}
		servers = append(servers, srv)
		url, closeHTTP, err := hostServe(srv)
		if err != nil {
			closeAll()
			return "", nil, nil, err
		}
		closers = append(closers, closeHTTP)
		nodeURLs = append(nodeURLs, url)
	}
	selfHosted = servers[0]

	rt, err := router.New(router.Config{
		Nodes:          nodeURLs,
		Hedge:          o.hedge,
		HedgeMax:       o.hedgeMax,
		ScrapeInterval: 50 * time.Millisecond,
		Logs:           nil,
	})
	if err != nil {
		closeAll()
		return "", nil, nil, err
	}
	url, closeRouterHTTP, err := hostServe(rt)
	if err != nil {
		rt.Close()
		closeAll()
		return "", nil, nil, err
	}
	shutdown := func() error {
		if err := closeRouterHTTP(); err != nil {
			return err
		}
		rt.Close()
		closeAll()
		return nil
	}
	return url, rt, shutdown, nil
}

// clusterBench is the PR 8 acceptance suite. Every node carries a 4ms
// emulated device service time per batch (DebugDelay) so throughput is
// device-bound rather than host-CPU-bound, the regime the scaling claim is
// about; the knob and its value are recorded in the study.
func clusterBench(out string) error {
	// The emulated service delay must be large enough that even the 4-node
	// cluster's aggregate capacity (nodes × machines / delay) stays below
	// what the host CPU can push through the in-process HTTP stack —
	// otherwise every configuration saturates the host and scaling flattens.
	const (
		serviceDelay = 6 * time.Millisecond
		scalePools   = "racer:mpu:1"
		hedgePools   = "racer:mpu:2"
		scaleMix     = "gcd:racer,relu:racer,vecadd:racer,vecxor:racer,vecand:racer,vecsub:racer," +
			"vecmul:racer,abs:racer,clamp:racer,sign:racer,threshold:racer,mac:racer," +
			"conv1d3:racer,jacobi1d:racer,manhattan:racer,euclidean:racer"
		hedgeMix = scaleMix
	)
	type scalePoint struct {
		Nodes     int     `json:"nodes"`
		OKPerSec  float64 `json:"ok_per_sec"`
		P99MS     float64 `json:"p99_ms"`
		SpeedupV1 float64 `json:"speedup_vs_1_node"`
	}
	type hedgeArm struct {
		OK        uint64  `json:"ok"`
		P50MS     float64 `json:"p50_ms"`
		P99MS     float64 `json:"p99_ms"`
		Hedges    uint64  `json:"hedges"`
		HedgeWins uint64  `json:"hedge_wins"`
		HedgeRate float64 `json:"hedge_rate"`
	}
	var bench struct {
		Config struct {
			Pools          string  `json:"pools_per_node"`
			Mix            string  `json:"mix"`
			Elements       int     `json:"elements"`
			ServiceDelayMS float64 `json:"emulated_service_delay_ms"`
		} `json:"config"`
		Scaling []scalePoint `json:"scaling"`
		Hedging struct {
			SlowNodeDelayMS float64  `json:"slow_node_delay_ms"`
			HedgeMaxMS      float64  `json:"hedge_max_ms"`
			RateHz          float64  `json:"rate_hz"`
			Baseline        hedgeArm `json:"baseline"`
			Hedged          hedgeArm `json:"hedged"`
			P99ReductionPct float64  `json:"p99_reduction_pct"`
		} `json:"hedging"`
		RollingDrain struct {
			Nodes    int     `json:"nodes"`
			RateHz   float64 `json:"rate_hz"`
			Requests uint64  `json:"requests"`
			OK       uint64  `json:"ok"`
			Refused  uint64  `json:"refused"`
			Dropped  uint64  `json:"dropped"`
			Balanced bool    `json:"accounting_balanced"`
		} `json:"rolling_drain"`
	}
	// settle lets one arm's cluster finish tearing down (pool goroutines,
	// connection close) before the next arm's latency measurements start.
	settle := func() { time.Sleep(time.Second) }
	base := opts{
		clients:  96,
		duration: 3 * time.Second,
		pools:    scalePools,
		mixSpec:  scaleMix,
		elements: 64,
		queue:    128,
		window:   2 * time.Millisecond,
		hedge:    true,
		hedgeMax: 250 * time.Millisecond,
	}
	bench.Config.Pools = scalePools
	bench.Config.Mix = scaleMix
	bench.Config.Elements = base.elements
	bench.Config.ServiceDelayMS = float64(serviceDelay) / 1e6

	// 1: throughput scaling 1 -> 2 -> 4 nodes, closed loop at saturation.
	// Seeds are diversified so every request is a distinct batch — the
	// coalescer would otherwise let one overloaded node merge its deep queue
	// into giant batches and masquerade as faster than a spread cluster.
	// Hedging is off here: this arm measures sharding capacity, not tail
	// rescue (the hedging arm below measures that).
	var okPerSec1 float64
	for _, n := range []int{1, 2, 4} {
		o := base
		o.nodes = n
		o.clients = 96
		o.duration = 4 * time.Second
		o.seeds = 1 << 16
		o.hedge = false
		o.slowSpec = fmt.Sprintf("all:%s", serviceDelay)
		fmt.Printf("== scaling: %d node(s) ==\n", n)
		settle()
		s, err := runStudy(o)
		if err != nil {
			return fmt.Errorf("scaling %d nodes: %w", n, err)
		}
		p := scalePoint{Nodes: n, OKPerSec: s.Throughput.OKPerSec, P99MS: s.LatencyMS.P99}
		if n == 1 {
			okPerSec1 = p.OKPerSec
		}
		if okPerSec1 > 0 {
			p.SpeedupV1 = p.OKPerSec / okPerSec1
		}
		bench.Scaling = append(bench.Scaling, p)
	}

	// 2: p99 with and without hedging, one node slow, open loop. The hedge
	// ceiling is dropped to 8ms so the duplicate fires well before the slow
	// node's 25ms service time; the hedge rate lands near the slow node's
	// share of the key space and is recorded as-is.
	const (
		slowDelay = 40 * time.Millisecond
		hedgeMax  = 8 * time.Millisecond
		hedgeRate = 100.0
	)
	bench.Hedging.SlowNodeDelayMS = float64(slowDelay) / 1e6
	bench.Hedging.HedgeMaxMS = float64(hedgeMax) / 1e6
	bench.Hedging.RateHz = hedgeRate
	for _, hedged := range []bool{false, true} {
		o := base
		o.nodes = 2
		o.pools = hedgePools
		o.mixSpec = hedgeMix
		o.rate = hedgeRate
		o.duration = 4 * time.Second
		o.slowSpec = fmt.Sprintf("1:%s", slowDelay)
		o.hedge = hedged
		o.hedgeMax = hedgeMax
		fmt.Printf("== hedging: hedge=%v ==\n", hedged)
		settle()
		s, err := runStudy(o)
		if err != nil {
			return fmt.Errorf("hedging (hedge=%v): %w", hedged, err)
		}
		arm := hedgeArm{OK: s.Totals.OK, P50MS: s.LatencyMS.P50, P99MS: s.LatencyMS.P99}
		if s.Cluster != nil {
			arm.Hedges = s.Cluster.Hedges
			arm.HedgeWins = s.Cluster.HedgeWins
			arm.HedgeRate = s.Cluster.HedgeRate
		}
		if hedged {
			bench.Hedging.Hedged = arm
		} else {
			bench.Hedging.Baseline = arm
		}
	}
	if b := bench.Hedging.Baseline.P99MS; b > 0 {
		bench.Hedging.P99ReductionPct = 100 * (b - bench.Hedging.Hedged.P99MS) / b
	}

	// 3: rolling drain under open-loop load: node 0 drains at half duration,
	// the router re-routes, and the accounting must balance with zero lost.
	{
		o := base
		o.nodes = 3
		o.pools = hedgePools
		o.mixSpec = hedgeMix
		o.rate = 150
		o.duration = 4 * time.Second
		o.drain = true
		o.tenants = 3
		fmt.Printf("== rolling drain: 3 nodes ==\n")
		settle()
		s, err := runStudy(o)
		if err != nil {
			return fmt.Errorf("rolling drain: %w", err)
		}
		d := &bench.RollingDrain
		d.Nodes = 3
		d.RateHz = o.rate
		d.Requests = s.Totals.Requests
		d.OK = s.Totals.OK
		d.Refused = s.Totals.Refused + s.Totals.Refused429
		d.Dropped = s.Totals.Dropped
		d.Balanced = d.OK+d.Refused == d.Requests && d.Dropped == 0
		if !d.Balanced {
			return fmt.Errorf("rolling drain accounting does not balance: %+v", *d)
		}
	}

	if out == "" {
		out = "BENCH_pr8.json"
	}
	if err := exp.WriteJSON(out, &bench); err != nil {
		return err
	}
	fmt.Printf("mpuload: wrote %s\n", out)
	speedup2 := bench.Scaling[1].SpeedupV1
	fmt.Printf("mpuload: scaling 1->2 nodes: %.2fx; 1->4: %.2fx\n", speedup2, bench.Scaling[2].SpeedupV1)
	fmt.Printf("mpuload: hedging p99: %.2fms -> %.2fms (%.0f%% reduction, hedge rate %.3f)\n",
		bench.Hedging.Baseline.P99MS, bench.Hedging.Hedged.P99MS,
		bench.Hedging.P99ReductionPct, bench.Hedging.Hedged.HedgeRate)
	if speedup2 < 1.8 {
		return fmt.Errorf("scaling 1->2 nodes is %.2fx, below the 1.8x acceptance floor", speedup2)
	}
	if bench.Hedging.P99ReductionPct < 30 {
		return fmt.Errorf("hedging reduced p99 by %.0f%%, below the 30%% acceptance floor", bench.Hedging.P99ReductionPct)
	}
	return nil
}

// qosArm is one -qos-bench measurement: the same resident-batch-plus-latency
// load with preemption either enabled or disabled.
type qosArm struct {
	Preempt      bool    `json:"preempt"`
	LatencyOK    uint64  `json:"latency_ok"`
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP90MS float64 `json:"latency_p90_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
	LatencyMaxMS float64 `json:"latency_max_ms"`
	BatchJobs    uint64  `json:"batch_jobs"`
	BatchMeanMS  float64 `json:"batch_mean_ms"`
	BatchPerSec  float64 `json:"batch_per_sec"`
	Preemptions  uint64  `json:"preemptions"`
	Spills       uint64  `json:"preempt_spills"`
	Restores     uint64  `json:"restores"`
}

// scrapeCounter reads one unlabeled counter (or histogram _count) value from
// the daemon's /metrics exposition.
func scrapeCounter(client *http.Client, base, name string) (uint64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return 0, fmt.Errorf("metric %s: bad value %q", name, rest)
			}
			return uint64(v), nil
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// qosBench is the PR 9 acceptance suite. One machine runs a closed-loop
// stream of heavy batch-class jobs — sized so each run spans many thermal
// rounds, the granularity preemption can exploit — while small latency-class
// requests arrive open-loop. The same load is measured with ensemble-boundary
// preemption enabled and disabled (queue priority only); the floors encode
// the tentpole claim: preemption must cut the latency-class p99 at least 5x
// while costing the batch stream at most 15% throughput (closed-loop single
// stream, so throughput is the inverse of mean job service time).
func qosBench(out string) error {
	const (
		batchWorkload = "gcd"
		batchElems    = 1 << 23 // ~35 thermal rounds/job on racer: preemption waits one round, not one job
		latWorkload   = "vecadd"
		latElems      = 256
		latRate       = 0.8 // arrivals/sec; keeps the snapshot+restore tax well inside the batch budget
		measure       = 24 * time.Second
	)
	var bench struct {
		Config struct {
			Pools         string  `json:"pools"`
			BatchWorkload string  `json:"batch_workload"`
			BatchElements int     `json:"batch_elements"`
			LatWorkload   string  `json:"latency_workload"`
			LatElements   int     `json:"latency_elements"`
			LatRateHz     float64 `json:"latency_rate_hz"`
			Duration      string  `json:"duration_per_arm"`
		} `json:"config"`
		Preempt          qosArm  `json:"preempt"`
		NoPreempt        qosArm  `json:"nopreempt"`
		P99ImprovementX  float64 `json:"latency_p99_improvement_x"`
		BatchSlowdownPct float64 `json:"batch_slowdown_pct"`
	}
	bench.Config.Pools = "racer:mpu:1"
	bench.Config.BatchWorkload = batchWorkload
	bench.Config.BatchElements = batchElems
	bench.Config.LatWorkload = latWorkload
	bench.Config.LatElements = latElems
	bench.Config.LatRateHz = latRate
	bench.Config.Duration = measure.String()

	runArm := func(nopreempt bool) (*qosArm, error) {
		o := opts{
			pools:       bench.Config.Pools,
			queue:       16,
			window:      time.Millisecond,
			maxElements: batchElems,
			nopreempt:   nopreempt,
			maxParked:   8,
		}
		url, shutdown, err := selfHost(o, 0)
		if err != nil {
			return nil, err
		}
		defer shutdown()
		transport := &http.Transport{MaxIdleConnsPerHost: 16}
		defer transport.CloseIdleConnections()
		client := &http.Client{Timeout: 2 * time.Minute, Transport: transport}
		execURL := url + "/v1/execute"

		batchBody, _ := json.Marshal(map[string]any{
			"workload": batchWorkload, "backend": "racer", "elements": batchElems, "seed": 7,
		})
		latBody := func(i int) []byte {
			b, _ := json.Marshal(map[string]any{
				"workload": latWorkload, "backend": "racer", "elements": latElems, "seed": i,
			})
			return b
		}
		// Warm both program paths (trace recording, lane allocation) before
		// the measured window so arm one and arm two start equally warm.
		for _, warm := range [][]byte{batchBody, latBody(0)} {
			if status, _, err := post(client, execURL, "", serve.ClassBatch, warm); err != nil || status != http.StatusOK {
				return nil, fmt.Errorf("warmup: status %d, err %v", status, err)
			}
		}

		var (
			stop      = make(chan struct{})
			wg        sync.WaitGroup
			mu        sync.Mutex
			batchSecs []float64
			latSecs   []float64
			armErr    error
		)
		fail := func(err error) {
			mu.Lock()
			if armErr == nil {
				armErr = err
			}
			mu.Unlock()
		}
		start := time.Now()
		wg.Add(1)
		go func() { // the resident batch stream: one job always in flight
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				status, _, err := post(client, execURL, "", serve.ClassBatch, batchBody)
				if err != nil || status != http.StatusOK {
					fail(fmt.Errorf("batch job: status %d, err %v", status, err))
					return
				}
				sec := time.Since(t0).Seconds()
				mu.Lock()
				batchSecs = append(batchSecs, sec)
				mu.Unlock()
			}
		}()

		rng := rand.New(rand.NewSource(9))
		var lwg sync.WaitGroup
		deadline := start.Add(measure)
		for i := 0; time.Now().Before(deadline); i++ {
			time.Sleep(time.Duration(rng.ExpFloat64() / latRate * float64(time.Second)))
			lwg.Add(1)
			go func(i int) {
				defer lwg.Done()
				t0 := time.Now()
				status, _, err := post(client, execURL, "", serve.ClassLatency, latBody(i))
				if err != nil || status != http.StatusOK {
					fail(fmt.Errorf("latency request: status %d, err %v", status, err))
					return
				}
				sec := time.Since(t0).Seconds()
				mu.Lock()
				latSecs = append(latSecs, sec)
				mu.Unlock()
			}(i)
		}
		lwg.Wait()
		close(stop)
		wg.Wait()
		elapsed := time.Since(start)
		if armErr != nil {
			return nil, armErr
		}

		arm := &qosArm{Preempt: !nopreempt}
		if arm.Preemptions, err = scrapeCounter(client, url, "mpud_preemptions_total"); err != nil {
			return nil, err
		}
		if arm.Spills, err = scrapeCounter(client, url, "mpud_preempt_spills_total"); err != nil {
			return nil, err
		}
		if arm.Restores, err = scrapeCounter(client, url, "mpud_restore_seconds_count"); err != nil {
			return nil, err
		}
		arm.LatencyOK = uint64(len(latSecs))
		arm.LatencyP50MS = exp.Percentile(latSecs, 0.50) * 1e3
		arm.LatencyP90MS = exp.Percentile(latSecs, 0.90) * 1e3
		arm.LatencyP99MS = exp.Percentile(latSecs, 0.99) * 1e3
		arm.LatencyMaxMS = exp.Percentile(latSecs, 1.0) * 1e3
		arm.BatchJobs = uint64(len(batchSecs))
		if len(batchSecs) > 0 {
			var sum float64
			for _, s := range batchSecs {
				sum += s
			}
			arm.BatchMeanMS = sum / float64(len(batchSecs)) * 1e3
			arm.BatchPerSec = float64(len(batchSecs)) / elapsed.Seconds()
		}
		fmt.Printf("mpuload: qos arm preempt=%v: latency p99 %.1fms (%d ok), batch mean %.0fms (%d jobs), %d preemptions, %d spills\n",
			arm.Preempt, arm.LatencyP99MS, arm.LatencyOK, arm.BatchMeanMS, arm.BatchJobs, arm.Preemptions, arm.Spills)
		return arm, nil
	}

	for _, nopreempt := range []bool{true, false} {
		fmt.Printf("== qos: preempt=%v ==\n", !nopreempt)
		arm, err := runArm(nopreempt)
		if err != nil {
			return fmt.Errorf("qos arm (nopreempt=%v): %w", nopreempt, err)
		}
		if nopreempt {
			bench.NoPreempt = *arm
		} else {
			bench.Preempt = *arm
		}
	}
	if p := bench.Preempt.LatencyP99MS; p > 0 {
		bench.P99ImprovementX = bench.NoPreempt.LatencyP99MS / p
	}
	if m := bench.NoPreempt.BatchMeanMS; m > 0 {
		bench.BatchSlowdownPct = 100 * (bench.Preempt.BatchMeanMS - m) / m
	}

	if out == "" {
		out = "BENCH_pr9.json"
	}
	if err := exp.WriteJSON(out, &bench); err != nil {
		return err
	}
	fmt.Printf("mpuload: wrote %s\n", out)
	fmt.Printf("mpuload: qos: latency p99 %.1fms -> %.1fms (%.1fx), batch mean %.0fms -> %.0fms (%.1f%% slower)\n",
		bench.NoPreempt.LatencyP99MS, bench.Preempt.LatencyP99MS, bench.P99ImprovementX,
		bench.NoPreempt.BatchMeanMS, bench.Preempt.BatchMeanMS, bench.BatchSlowdownPct)

	// Acceptance floors: the latency-class tail must improve at least 5x, the
	// batch stream must keep at least 85% of its uncontended-arm throughput,
	// and the win must actually come from preemption (not an idle machine).
	if bench.NoPreempt.Preemptions != 0 {
		return fmt.Errorf("nopreempt arm recorded %d preemptions; the knob did not take", bench.NoPreempt.Preemptions)
	}
	if bench.Preempt.Preemptions < 5 {
		return fmt.Errorf("preempt arm recorded only %d preemptions; the latency load never contended", bench.Preempt.Preemptions)
	}
	if bench.P99ImprovementX < 5 {
		return fmt.Errorf("preemption improved latency p99 %.1fx, below the 5x acceptance floor", bench.P99ImprovementX)
	}
	if bench.BatchSlowdownPct > 15 {
		return fmt.Errorf("preemption slowed the batch stream %.1f%%, above the 15%% acceptance ceiling", bench.BatchSlowdownPct)
	}
	return nil
}
