// Command mpuload is a closed-loop load generator for mpud: N concurrent
// clients each issue a request, wait for the response, and immediately
// issue the next, cycling through a workload mix. It reports throughput,
// latency percentiles, and the admission outcome histogram, and writes the
// study as JSON.
//
// Usage:
//
//	mpuload [-url http://host:port] [-c 64] [-duration 10s]
//	        [-pools racer:mpu:2,...] [-mix gcd:racer,relu:mimdram,...]
//	        [-elements 128] [-drain] [-out BENCH_pr5.json]
//
// With no -url, mpuload self-hosts an in-process serve.Server on a loopback
// port — the standard way to run the study without a separate daemon.
// -drain delivers a real SIGTERM to the process at half duration: the
// server stops admitting (clients see clean 503s) while admitted requests
// run to completion. The study records how many in-flight requests the
// drain dropped; the acceptance contract is zero.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"mpu/internal/exp"
	"mpu/internal/serve"
)

type mixEntry struct {
	workload string
	backend  string
	mode     string
}

// study is the BENCH_pr5.json schema.
type study struct {
	Config struct {
		Clients  int      `json:"clients"`
		Duration string   `json:"duration"`
		Pools    string   `json:"pools"`
		Mix      []string `json:"mix"`
		Elements int      `json:"elements"`
		Drain    bool     `json:"drain"`
	} `json:"config"`
	Totals struct {
		Requests uint64            `json:"requests"`
		OK       uint64            `json:"ok"`
		Refused  uint64            `json:"refused_503"`
		Dropped  uint64            `json:"dropped"`
		ByStatus map[string]uint64 `json:"by_status"`
	} `json:"totals"`
	Throughput struct {
		OKPerSec float64 `json:"ok_per_sec"`
	} `json:"throughput"`
	LatencyMS struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	DrainStudy *drainStudy `json:"drain_study,omitempty"`
}

type drainStudy struct {
	AtMS              float64 `json:"at_ms"`
	InflightAtDrain   int64   `json:"inflight_at_drain"`
	InflightCompleted int64   `json:"inflight_completed"`
	InflightDropped   int64   `json:"inflight_dropped"`
	OKAfterDrain      uint64  `json:"ok_after_drain"`
	RefusedAfterDrain uint64  `json:"refused_after_drain"`
}

func main() {
	url := flag.String("url", "", "mpud base URL; empty self-hosts an in-process server")
	clients := flag.Int("c", 64, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 10*time.Second, "study length")
	pools := flag.String("pools", "racer:mpu:2,mimdram:mpu:2,dcache:mpu:2,simdram:mpu:2",
		"self-hosted pools: backend:mode[:size],...")
	mix := flag.String("mix", "gcd:racer,relu:mimdram,vecadd:dcache,vecxor:simdram",
		"request mix: workload:backend[:mode],... cycled per client")
	elements := flag.Int("elements", 128, "elements per request")
	queue := flag.Int("queue", 64, "self-hosted admission queue depth per pool")
	window := flag.Duration("window", 2*time.Millisecond, "self-hosted batching window")
	drain := flag.Bool("drain", false, "SIGTERM the self-hosted server at half duration")
	out := flag.String("out", "", "write the study JSON to this path")
	flag.Parse()

	if err := run(*url, *clients, *duration, *pools, *mix, *elements, *queue, *window, *drain, *out); err != nil {
		fmt.Fprintf(os.Stderr, "mpuload: %v\n", err)
		os.Exit(1)
	}
}

func parseMix(s string) ([]mixEntry, error) {
	var out []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) < 2 || len(f) > 3 {
			return nil, fmt.Errorf("mix entry %q: want workload:backend[:mode]", part)
		}
		e := mixEntry{workload: f[0], backend: f[1], mode: "mpu"}
		if len(f) == 3 {
			e.mode = f[2]
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return out, nil
}

func run(url string, clients int, duration time.Duration, pools, mixSpec string, elements, queue int, window time.Duration, drain bool, out string) error {
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	if drain && url != "" {
		return fmt.Errorf("-drain requires the self-hosted server (no -url)")
	}

	var shutdown func() error
	if url == "" {
		url, shutdown, err = selfHost(pools, queue, window)
		if err != nil {
			return err
		}
	}

	var (
		mu        sync.Mutex
		latencies []float64 // seconds, OK requests only
		byStatus  = map[string]uint64{}
		requests  uint64
		ok        uint64
		refused   uint64
		dropped   uint64

		drainedAt   atomic.Int64 // unix nanos, 0 = not drained
		inflight    atomic.Int64
		inflightAtD atomic.Int64
		okAfter     atomic.Uint64
		refAfter    atomic.Uint64
		straddleOK  atomic.Int64 // requests in flight at drain that completed OK
		straddleBad atomic.Int64 // ... that were dropped
	)

	client := &http.Client{Timeout: 2 * time.Minute}
	stop := make(chan struct{})
	start := time.Now()

	sig := make(chan os.Signal, 1)
	if drain {
		signal.Notify(sig, syscall.SIGTERM)
		go func() {
			time.Sleep(duration / 2)
			p, _ := os.FindProcess(os.Getpid())
			p.Signal(syscall.SIGTERM)
		}()
	}
	go func() {
		if drain {
			<-sig
			// Record the in-flight population the drain must not drop, then
			// stop admission. The HTTP layer stays up so refused requests get
			// clean 503s and admitted ones complete.
			inflightAtD.Store(inflight.Load())
			drainedAt.Store(time.Now().UnixNano())
			drainSelfHosted()
		}
		time.Sleep(time.Until(start.Add(duration)))
		close(stop)
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := mix[i%len(mix)]
				body, _ := json.Marshal(map[string]any{
					"workload": e.workload, "backend": e.backend, "mode": e.mode,
					"elements": elements, "seed": int64(i % 8), "check": true,
				})
				preDrain := drainedAt.Load() == 0
				inflight.Add(1)
				t0 := time.Now()
				status, err := post(client, url+"/v1/execute", body)
				sec := time.Since(t0).Seconds()
				inflight.Add(-1)
				straddled := preDrain && drainedAt.Load() != 0

				mu.Lock()
				requests++
				if err != nil {
					byStatus["error"]++
					dropped++
				} else {
					byStatus[fmt.Sprint(status)]++
					switch status {
					case http.StatusOK:
						ok++
						latencies = append(latencies, sec)
					case http.StatusServiceUnavailable:
						refused++
					default:
						dropped++
					}
				}
				mu.Unlock()

				if drainedAt.Load() != 0 && !straddled {
					switch status {
					case http.StatusOK:
						okAfter.Add(1)
					case http.StatusServiceUnavailable:
						refAfter.Add(1)
					}
				}
				if straddled {
					if err == nil && status == http.StatusOK {
						straddleOK.Add(1)
					} else if err != nil || status != http.StatusServiceUnavailable {
						straddleBad.Add(1)
					}
				}
				if err == nil && status == http.StatusServiceUnavailable {
					// Honor backpressure: back off instead of hammering a
					// full (or draining) admission queue.
					select {
					case <-stop:
						return
					case <-time.After(100 * time.Millisecond):
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if shutdown != nil {
		if err := shutdown(); err != nil {
			return err
		}
	}

	var s study
	s.Config.Clients = clients
	s.Config.Duration = duration.String()
	s.Config.Pools = pools
	for _, e := range mix {
		s.Config.Mix = append(s.Config.Mix, e.workload+":"+e.backend+":"+e.mode)
	}
	s.Config.Elements = elements
	s.Config.Drain = drain
	s.Totals.Requests = requests
	s.Totals.OK = ok
	s.Totals.Refused = refused
	s.Totals.Dropped = dropped
	s.Totals.ByStatus = byStatus
	s.Throughput.OKPerSec = float64(ok) / elapsed.Seconds()
	sort.Float64s(latencies)
	pct := func(p float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i] * 1e3
	}
	s.LatencyMS.P50 = pct(0.50)
	s.LatencyMS.P90 = pct(0.90)
	s.LatencyMS.P99 = pct(0.99)
	s.LatencyMS.Max = pct(1.0)
	if drain {
		s.DrainStudy = &drainStudy{
			AtMS:              float64(drainedAt.Load()-start.UnixNano()) / 1e6,
			InflightAtDrain:   inflightAtD.Load(),
			InflightCompleted: straddleOK.Load(),
			InflightDropped:   straddleBad.Load(),
			OKAfterDrain:      okAfter.Load(),
			RefusedAfterDrain: refAfter.Load(),
		}
	}

	fmt.Printf("mpuload: %d clients, %s: %d requests, %d ok (%.1f/s), %d refused, %d dropped\n",
		clients, elapsed.Round(time.Millisecond), requests, ok, s.Throughput.OKPerSec, refused, dropped)
	fmt.Printf("mpuload: latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
		s.LatencyMS.P50, s.LatencyMS.P90, s.LatencyMS.P99, s.LatencyMS.Max)
	if s.DrainStudy != nil {
		d := s.DrainStudy
		fmt.Printf("mpuload: drain at %.0fms: %d in flight, %d completed, %d dropped; after: %d ok, %d refused\n",
			d.AtMS, d.InflightAtDrain, d.InflightCompleted, d.InflightDropped, d.OKAfterDrain, d.RefusedAfterDrain)
		if d.InflightDropped > 0 || dropped > 0 {
			return fmt.Errorf("drain dropped %d in-flight requests (%d dropped total)", d.InflightDropped, dropped)
		}
	}
	if out != "" {
		if err := exp.WriteJSON(out, &s); err != nil {
			return err
		}
		fmt.Printf("mpuload: wrote %s\n", out)
	}
	return nil
}

func post(client *http.Client, url string, body []byte) (int, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// Self-hosted server plumbing. drainSelfHosted stops admission only; the
// HTTP layer and pools shut down in the function returned by selfHost.
var selfHosted *serve.Server

func drainSelfHosted() {
	if selfHosted != nil {
		selfHosted.Drain()
	}
}

func selfHost(pools string, queue int, window time.Duration) (string, func() error, error) {
	specs, err := serve.ParsePoolSpecs(pools)
	if err != nil {
		return "", nil, err
	}
	srv, err := serve.New(serve.Config{
		Pools:       specs,
		QueueDepth:  queue,
		BatchWindow: window,
		Logs:        nil,
	})
	if err != nil {
		return "", nil, err
	}
	selfHosted = srv
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
	}
	go hs.Serve(ln)
	shutdown := func() error {
		srv.Drain()
		if err := hs.Close(); err != nil {
			return err
		}
		srv.Close()
		return nil
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
