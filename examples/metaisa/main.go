// Meta-ISA: the §IX graph layer compiles tensor-style operations — here a
// fused normalize-and-score computation with a cross-VRF reduction — onto
// MPU ensembles without writing a single ISA instruction. Consecutive
// elementwise ops fuse into one compute ensemble; the Dot expands into the
// DTC tree-reduce collective.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpu"
)

func main() {
	addrs := []mpu.VRFAddr{{RFH: 0}, {RFH: 1}, {RFH: 2}, {RFH: 3}}
	g := mpu.NewGraph(addrs)

	x := g.Input(0)
	w := g.Input(1)
	bias := g.Const(50)
	h := g.Relu(g.Add(g.Mul(x, w), bias)) // fused into one ensemble
	score := g.Dot(h, w)                  // cross-VRF tree reduction

	prog, err := g.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph compiled to %d MPU instructions\n", len(prog))
	a := mpu.Analyze(prog)
	fmt.Printf("%s\n", a)

	m, err := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER()})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		log.Fatal(err)
	}
	spec := mpu.RACER()
	rng := rand.New(rand.NewSource(9))
	want := make([]uint64, spec.Lanes)
	for _, adr := range addrs {
		xv := make([]uint64, spec.Lanes)
		wv := make([]uint64, spec.Lanes)
		for l := range xv {
			xv[l] = uint64(rng.Intn(100))
			wv[l] = uint64(rng.Intn(100))
			hv := xv[l]*wv[l] + 50
			want[l] += hv * wv[l]
		}
		m.WriteVector(0, adr, 0, xv)
		m.WriteVector(0, adr, 1, wv)
	}
	if _, err := m.Run(); err != nil {
		log.Fatal(err)
	}
	got, _ := m.ReadVector(0, addrs[0], score.Reg())
	bad := 0
	for l := range want {
		if got[l] != want[l] {
			bad++
		}
	}
	fmt.Printf("verified %d lane scores, %d mismatches; score[0] = %d\n", len(want), bad, got[0])
	if bad > 0 {
		log.Fatal("verification failed")
	}
}
