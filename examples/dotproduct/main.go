// Dotproduct: 64 independent dot products computed with per-VRF MAC chains
// followed by a log-depth cross-VRF tree reduction — the DTC-based
// gather/reduce collective the end-to-end applications build on. Vector
// element (v, l) lives in lane l of VRF v; lane l's final value in VRF 0 is
// the dot product of row l across all 8 VRFs.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mpu"
)

func main() {
	const nVRFs = 8 // one per RF holder
	spec := mpu.RACER()
	addrs := make([]mpu.VRFAddr, nVRFs)
	for i := range addrs {
		addrs[i] = mpu.VRFAddr{RFH: uint8(i), VRF: 0}
	}

	b := mpu.NewBuilder()
	// Each VRF computes its partial products: r2 = r0 * r1.
	b.Ensemble(addrs, func() {
		b.Mul(0, 1, 2)
	})
	// Tree-reduce the partials into VRF 0 (r3 stages the hops).
	b.ReduceAdd(addrs, 2, 3)
	prog, err := b.Program()
	if err != nil {
		log.Fatal(err)
	}

	m, err := mpu.NewMachine(mpu.MachineConfig{Spec: spec})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	lanes := spec.Lanes
	want := make([]uint64, lanes)
	for _, a := range addrs {
		av := make([]uint64, lanes)
		bv := make([]uint64, lanes)
		for l := range av {
			av[l] = uint64(rng.Intn(1000))
			bv[l] = uint64(rng.Intn(1000))
			want[l] += av[l] * bv[l]
		}
		m.WriteVector(0, a, 0, av)
		m.WriteVector(0, a, 1, bv)
	}

	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	got, _ := m.ReadVector(0, addrs[0], 2)
	bad := 0
	for l := range want {
		if got[l] != want[l] {
			bad++
		}
	}
	fmt.Printf("%d batched dot products over %d VRFs: %d mismatches\n", lanes, nVRFs, bad)
	fmt.Printf("first results: %v\n", got[:4])
	fmt.Printf("%d ensembles, %d DTC transfers, %d micro-ops, %.3g s\n",
		stats.Ensembles, stats.Transfers, stats.MicroOps, stats.TimeSeconds(1.0))
	if bad > 0 {
		log.Fatal("verification failed")
	}
}
