// BlackScholes: end-to-end option pricing in Q16 fixed point, entirely in
// PUM — per-lane ln/sqrt/exp software subroutines and a logistic normal CDF
// split across two MPUs. This is the application where the paper reports the
// MPU still trailing the GPU (hardware transcendentals); the example prints
// both sides.
package main

import (
	"fmt"
	"log"

	"mpu"
)

const q = 65536.0 // Q16

func main() {
	spec := mpu.RACER()
	res, err := mpu.RunBlackScholes(mpu.BlackScholesConfig{
		Spec:    spec,
		Mode:    mpu.ModeMPU,
		Options: 4 * spec.Lanes,
		Seed:    7,
		Check:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BlackScholes on MPU:RACER — %d options priced across %d MPUs, all verified\n",
		res.Checked, res.MPUs)
	fmt.Printf("time %.3g s, energy %.3g J\n", res.Seconds, res.Joules)
	fmt.Printf("ezpim: %d statements vs %d assembled instructions\n\n", res.EzpimLines, res.AsmLines)

	// GPU comparison: the RTX 4090 model prices the same batch with
	// hardware transcendentals.
	gpu := mpu.RTX4090()
	g, err := gpu.Run(mpu.GPUProfile{
		Name: "blackscholes", Elements: res.Checked,
		OpsPerElement: 60, BytesPerElement: 40, Passes: 1,
		HostBytes: float64(res.Checked * 40),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPU model: %.3g s — the GPU wins %.0fx here (CORDIC-style software\n",
		g.Seconds, res.Seconds/g.Seconds)
	fmt.Println("subroutines vs dedicated hardware, as §VIII-D reports), but the MPU")

	base, err := mpu.RunBlackScholes(mpu.BlackScholesConfig{
		Spec: spec, Mode: mpu.ModeBaseline, Options: 4 * spec.Lanes, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("still improves on its own Baseline by %.2fx.\n", base.Seconds/res.Seconds)
}
