// Quickstart: assemble a one-ensemble MPU program, run it on the simulated
// RACER back end, and read the results back. Every ADD below is genuinely
// computed by ~1300 in-ReRAM NOR micro-ops on bit planes.
package main

import (
	"fmt"
	"log"

	"mpu"
)

func main() {
	prog, err := mpu.Assemble(`
		// One compute ensemble over a single vector register file.
		COMPUTE rfh0 vrf0
		ADD r0 r1 r2
		MUL r2 r0 r3
		COMPUTE_DONE
	`)
	if err != nil {
		log.Fatal(err)
	}

	m, err := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER()})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		log.Fatal(err)
	}

	a := []uint64{1, 2, 3, 4}
	b := []uint64{10, 20, 30, 40}
	addr := mpu.VRFAddr{RFH: 0, VRF: 0}
	if err := m.WriteVector(0, addr, 0, a); err != nil {
		log.Fatal(err)
	}
	if err := m.WriteVector(0, addr, 1, b); err != nil {
		log.Fatal(err)
	}

	stats, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	sums, _ := m.ReadVector(0, addr, 2)
	prods, _ := m.ReadVector(0, addr, 3)
	for i := range a {
		fmt.Printf("lane %d: %d + %d = %d;  (a+b)*a = %d\n", i, a[i], b[i], sums[i], prods[i])
	}
	fmt.Printf("\nexecuted %d micro-ops in %d cycles (%.3g s at 1 GHz), %.3g J\n",
		stats.MicroOps, stats.Cycles, stats.TimeSeconds(1.0), stats.TotalEnergyPJ()*1e-12)
}
