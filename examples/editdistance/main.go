// EditDistance: the systolic genome-matching application of §VIII-D. Query
// reads circulate around a ring of MPUs while each MPU scores them against
// its resident reference chunks with bitwise comparisons. The example also
// shows why the Baseline configuration drowns in off-chip time (Fig. 15).
package main

import (
	"fmt"
	"log"

	"mpu"
)

func main() {
	cfg := mpu.EditDistanceConfig{
		Spec:  mpu.RACER(),
		Mode:  mpu.ModeMPU,
		MPUs:  8, // ring size
		VRFs:  4, // reads per MPU = VRFs × 64 lanes
		Seed:  42,
		Check: true, // verify every lane against the Go reference
	}
	res, err := mpu.RunEditDistance(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EditDistance on MPU:RACER — %d MPUs, %d reads scored, all %d lanes verified\n",
		res.MPUs, res.Checked, res.Checked)
	fmt.Printf("time %.3g s, energy %.3g J, %d inter-MPU sends\n",
		res.Seconds, res.Joules, res.Stats.Sends)
	c, n, o := res.Breakdown()
	fmt.Printf("breakdown: %.0f%% compute, %.0f%% inter-MPU, %.0f%% off-chip\n\n", 100*c, 100*n, 100*o)

	cfg.Mode = mpu.ModeBaseline
	base, err := mpu.RunEditDistance(cfg)
	if err != nil {
		log.Fatal(err)
	}
	bc, bn, bo := base.Breakdown()
	fmt.Printf("Baseline:RACER — time %.3g s (%.1fx slower), %d CPU offloads\n",
		base.Seconds, base.Seconds/res.Seconds, base.Stats.Offloads)
	fmt.Printf("breakdown: %.0f%% compute, %.0f%% inter-MPU, %.0f%% off-chip\n", 100*bc, 100*bn, 100*bo)
	fmt.Println("\nthe systolic transfers that the MPU coordinates on-chip become host")
	fmt.Println("round trips in the Baseline — the paper's Fig. 15 EditDistance story.")
}
