// LLMEncode: a transformer encoder block — feed-forward matmuls with ReLU, a
// residual connection, layer normalization, and a softmax head — executed
// end to end in fixed point across a coordinator and worker MPUs, with the
// weight broadcast, token scatter, and result gather all running as
// inter-MPU collectives on the simulated mesh.
package main

import (
	"fmt"
	"log"

	"mpu"
)

func main() {
	res, err := mpu.RunLLMEncode(mpu.LLMEncodeConfig{
		Spec:    mpu.RACER(),
		Mode:    mpu.ModeMPU,
		Workers: 3,
		VRFs:    2,
		Seed:    21,
		Check:   true, // bit-exact against the Go reference
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LLMEncode on MPU:RACER — %d tokens through the encoder block on %d MPUs\n",
		res.Checked, res.MPUs)
	fmt.Printf("compute steps: %v\n", res.Steps)
	fmt.Printf("collectives:   %v (%d send blocks over the mesh)\n", res.Collectives, res.Stats.Sends)
	fmt.Printf("time %.3g s, energy %.3g J\n", res.Seconds, res.Joules)
	c, n, o := res.Breakdown()
	fmt.Printf("breakdown: %.0f%% compute, %.0f%% inter-MPU, %.0f%% off-chip\n\n", 100*c, 100*n, 100*o)

	base, err := mpu.RunLLMEncode(mpu.LLMEncodeConfig{
		Spec: mpu.RACER(), Mode: mpu.ModeBaseline, Workers: 3, VRFs: 2, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Baseline:RACER needs %d CPU offloads for the same run: %.2fx slower.\n",
		base.Stats.Offloads, base.Seconds/res.Seconds)
}
