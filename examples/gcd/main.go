// GCD: the ezpim text language compiles a data-driven while loop — the
// control-flow pattern original PUM datapaths cannot run without a host
// CPU — and the example contrasts the MPU configuration with the Baseline
// one on the exact same binary (the Fig. 1 effect).
package main

import (
	"fmt"
	"log"

	"mpu"
)

const src = `
# per-lane Euclid: gcd(r0, r1) -> r0; lanes diverge and exit independently
ensemble {
    use rfh0.vrf0
    r2 = 0
    while r1 != r2 {
        r3 = r0 % r1
        r0 = r1
        r1 = r3
    }
}
`

func main() {
	res, err := mpu.CompileEzpim(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ezpim: %d source lines -> %d MPU instructions\n\n", res.SourceLines, res.AsmLines)

	a := []uint64{12, 35, 7, 48, 1071, 462}
	b := []uint64{18, 14, 13, 36, 462, 1071}

	run := func(mode mpu.Mode) *mpu.Stats {
		m, err := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER(), Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		if err := m.LoadAll(res.Program); err != nil {
			log.Fatal(err)
		}
		addr := mpu.VRFAddr{}
		m.WriteVector(0, addr, 0, a)
		m.WriteVector(0, addr, 1, b)
		st, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		if mode == mpu.ModeMPU {
			out, _ := m.ReadVector(0, addr, 0)
			for i := range a {
				fmt.Printf("gcd(%4d, %4d) = %d\n", a[i], b[i], out[i])
			}
		}
		return st
	}

	mpuSt := run(mpu.ModeMPU)
	baseSt := run(mpu.ModeBaseline)
	fmt.Printf("\nMPU:      %9d cycles, %d CPU offloads\n", mpuSt.Cycles, mpuSt.Offloads)
	fmt.Printf("Baseline: %9d cycles, %d CPU offloads (one per loop-exit check)\n",
		baseSt.Cycles, baseSt.Offloads)
	fmt.Printf("in-MPU control flow is %.1fx faster on this loop\n",
		float64(baseSt.Cycles)/float64(mpuSt.Cycles))
}
