package mpu_test

import (
	"testing"

	"mpu"
)

// The facade tests exercise the public API exactly as a downstream user
// would; deep behaviour is covered by the internal package tests.

func TestQuickstartFlow(t *testing.T) {
	prog, err := mpu.Assemble(`
		COMPUTE rfh0 vrf0
		ADD r0 r1 r2
		COMPUTE_DONE
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER()})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadAll(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteVector(0, mpu.VRFAddr{}, 0, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteVector(0, mpu.VRFAddr{}, 1, []uint64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	stats, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadVector(0, mpu.VRFAddr{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], want[i])
		}
	}
	if stats.MicroOps == 0 {
		t.Fatal("no micro-ops recorded")
	}
}

func TestBinaryRoundTripThroughFacade(t *testing.T) {
	prog, err := mpu.Assemble("COMPUTE rfh0 vrf0\nXOR r0 r1 r2\nCOMPUTE_DONE")
	if err != nil {
		t.Fatal(err)
	}
	back, err := mpu.DecodeProgram(mpu.EncodeProgram(prog))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(prog) {
		t.Fatal("binary round trip lost instructions")
	}
	if mpu.Disassemble(back) == "" {
		t.Fatal("empty disassembly")
	}
}

func TestEzpimFacade(t *testing.T) {
	res, err := mpu.CompileEzpim(`
		ensemble {
			use rfh0.vrf0
			r2 = 0
			while r0 > r2 {
				r0 = r0 - r1
			}
		}
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourceLines >= res.AsmLines {
		t.Fatal("no expansion measured")
	}

	b := mpu.NewBuilder()
	b.Ensemble([]mpu.VRFAddr{{}}, func() {
		b.If(mpu.Gt(0, 1), func() { b.Init1(2) }, func() { b.Init0(2) })
	})
	if _, err := b.Program(); err != nil {
		t.Fatal(err)
	}
	// All six condition constructors are exported.
	for _, c := range []mpu.Cond{mpu.Eq(0, 1), mpu.Ne(0, 1), mpu.Lt(0, 1), mpu.Gt(0, 1), mpu.Le(0, 1), mpu.Ge(0, 1)} {
		_ = c
	}
}

func TestBackendsFacade(t *testing.T) {
	if len(mpu.Backends()) != 3 {
		t.Fatal("expected three back ends")
	}
	for _, name := range []string{"racer", "mimdram", "dcache"} {
		be, err := mpu.BackendByName(name)
		if err != nil || be.Validate() != nil {
			t.Fatalf("backend %s: %v", name, err)
		}
	}
	if mpu.RACER().Name != "RACER" || mpu.MIMDRAM().Name != "MIMDRAM" || mpu.DualityCache().Name != "DualityCache" {
		t.Fatal("backend constructors misnamed")
	}
}

func TestKernelFacade(t *testing.T) {
	if len(mpu.Kernels()) != 21 {
		t.Fatal("expected 21 kernels")
	}
	k := mpu.KernelByName("vecadd")
	if k == nil {
		t.Fatal("vecadd missing")
	}
	spec := mpu.RACER()
	res, err := mpu.RunKernel(k, mpu.KernelRunConfig{
		Spec: spec, Mode: mpu.ModeMPU, TotalElements: spec.MPUs * spec.Lanes, Check: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckedLanes == 0 {
		t.Fatal("nothing verified")
	}
}

func TestGPUFacade(t *testing.T) {
	gpu := mpu.RTX4090()
	res, err := gpu.Run(mpu.GPUProfile{Name: "x", Elements: 1 << 20, OpsPerElement: 1, BytesPerElement: 24, Passes: 1})
	if err != nil || res.Seconds <= 0 {
		t.Fatalf("GPU model: %v %v", res, err)
	}
}

func TestSIMDRAMAndRemapFacade(t *testing.T) {
	be := mpu.SIMDRAM()
	if be.Name != "SIMDRAM" || be.Validate() != nil {
		t.Fatal("SIMDRAM backend broken")
	}
	prog, err := mpu.Assemble("COMPUTE rfh1 vrf40\nADD r0 r1 r2\nCOMPUTE_DONE")
	if err != nil {
		t.Fatal(err)
	}
	out, err := mpu.Remap(prog, 64, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].A != 3 || out[0].B != 8 {
		t.Fatalf("remapped to rfh%d.vrf%d", out[0].A, out[0].B)
	}
}

func TestReduceAddFacade(t *testing.T) {
	addrs := []mpu.VRFAddr{{RFH: 0}, {RFH: 1}}
	b := mpu.NewBuilder()
	b.ReduceAdd(addrs, 0, 1)
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER()})
	m.LoadAll(prog)
	m.WriteVector(0, addrs[0], 0, []uint64{10})
	m.WriteVector(0, addrs[1], 0, []uint64{32})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(0, addrs[0], 0)
	if got[0] != 42 {
		t.Fatalf("reduced = %d, want 42", got[0])
	}
}

func TestGraphFacade(t *testing.T) {
	addrs := []mpu.VRFAddr{{RFH: 0}, {RFH: 1}}
	g := mpu.NewGraph(addrs)
	d := g.Dot(g.Input(0), g.Input(1))
	prog, err := g.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mpu.NewMachine(mpu.MachineConfig{Spec: mpu.RACER()})
	m.LoadAll(prog)
	m.WriteVector(0, addrs[0], 0, []uint64{2})
	m.WriteVector(0, addrs[0], 1, []uint64{3})
	m.WriteVector(0, addrs[1], 0, []uint64{4})
	m.WriteVector(0, addrs[1], 1, []uint64{5})
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	got, _ := m.ReadVector(0, addrs[0], d.Reg())
	if got[0] != 2*3+4*5 {
		t.Fatalf("dot = %d, want 26", got[0])
	}
}

func TestOptimizeFacade(t *testing.T) {
	prog, _ := mpu.Assemble("COMPUTE rfh0 vrf0\nMOV r3 r3\nADD r0 r1 r2\nCOMPUTE_DONE")
	out, n := mpu.Optimize(prog)
	if n != 1 || len(out) != 3 {
		t.Fatalf("optimizer removed %d, len %d", n, len(out))
	}
}
